//! Guarded adaptation: retries, graceful degradation, and the do-no-harm
//! guarantee.
//!
//! [`adapt_guarded`] wraps [`crate::adapt::adapt`] in a fault-tolerant
//! envelope. Before the first attempt it snapshots the model's learnable
//! state via [`CheckpointRegressor`]; every failed attempt rolls the model
//! back to that snapshot, so a deployment can never end up *worse* than the
//! source model it started from. Failures classified recoverable by
//! [`AdaptError::recoverable`] earn bounded retries with hyper-parameters
//! adjusted per the failure cause ([`RecoveryPolicy`]); unrecoverable
//! failures — and recoverable ones that exhaust the retry budget — degrade
//! gracefully to [`GuardedOutcome::FellBackToSource`] with the model
//! bit-identical to its pre-adaptation state.
//!
//! Every decision is observable: `guard.*` counters in the metrics registry
//! (`runs`, `adapted`, `recovered`, `retries`, `rollbacks`, `fallbacks`),
//! a `guard.rollback` trace event per failed attempt, and an
//! `adapt_guarded` span carrying the final outcome label and retry count.

use crate::adapt::{adapt, AdaptationOutcome, SourceCalibration, TasfarConfig};
use crate::error::{AdaptError, ErrorKind};
use crate::faultinject;
use tasfar_nn::loss::Loss;
use tasfar_nn::model::{CheckpointRegressor, StochasticRegressor, TrainableRegressor};
use tasfar_nn::tensor::Tensor;

/// How [`adapt_guarded`] reacts to recoverable failures.
///
/// Factors that are non-finite or non-positive are treated as 1.0 (no
/// adjustment) rather than panicking — the guarded path never panics on a
/// bad policy.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Retry budget after the first attempt (0 = fail fast).
    pub max_retries: usize,
    /// Learning-rate multiplier applied after a fine-tune failure
    /// ([`ErrorKind::Train`]), e.g. 0.1 for a 10× backoff.
    pub lr_backoff: f64,
    /// Density grid-cell multiplier applied after
    /// [`ErrorKind::ZeroDensityMass`], [`ErrorKind::DegenerateBandwidth`],
    /// or [`ErrorKind::ZeroCredibility`] — a wider cell spreads mass over
    /// fewer, fuller bins.
    pub bandwidth_widen: f64,
    /// τ multiplier applied after [`ErrorKind::NoConfidentSamples`] (and,
    /// inverted, after [`ErrorKind::NoUncertainSamples`]): widening τ admits
    /// more samples into the confident set.
    pub tau_widen: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            lr_backoff: 0.1,
            bandwidth_widen: 2.0,
            tau_widen: 2.0,
        }
    }
}

/// The result of a guarded adaptation run.
#[derive(Debug)]
pub enum GuardedOutcome {
    /// The first attempt succeeded — the common, healthy path.
    Adapted(AdaptationOutcome),
    /// One or more attempts failed, a retry with adjusted hyper-parameters
    /// succeeded.
    Recovered {
        /// The successful attempt's outcome.
        outcome: AdaptationOutcome,
        /// How many retries were spent (≥ 1).
        retries: usize,
        /// The classified error of every failed attempt, in order.
        errors: Vec<AdaptError>,
    },
    /// Adaptation could not complete; the model was rolled back to its
    /// pre-adaptation snapshot (do-no-harm).
    FellBackToSource {
        /// The error that ended the run (the first unrecoverable one, or
        /// the last recoverable one after the retry budget ran out).
        error: AdaptError,
        /// Retries spent before giving up.
        retries: usize,
    },
}

impl GuardedOutcome {
    /// The successful adaptation outcome, if any.
    pub fn adaptation(&self) -> Option<&AdaptationOutcome> {
        match self {
            GuardedOutcome::Adapted(o) => Some(o),
            GuardedOutcome::Recovered { outcome, .. } => Some(outcome),
            GuardedOutcome::FellBackToSource { .. } => None,
        }
    }

    /// Stable snake_case label for metrics, span fields, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            GuardedOutcome::Adapted(_) => "adapted",
            GuardedOutcome::Recovered { .. } => "recovered",
            GuardedOutcome::FellBackToSource { .. } => "fell_back",
        }
    }

    /// Retries spent across the run (0 on the healthy path).
    pub fn retries(&self) -> usize {
        match self {
            GuardedOutcome::Adapted(_) => 0,
            GuardedOutcome::Recovered { retries, .. }
            | GuardedOutcome::FellBackToSource { retries, .. } => *retries,
        }
    }

    /// Whether the run degraded to the source model.
    pub fn fell_back(&self) -> bool {
        matches!(self, GuardedOutcome::FellBackToSource { .. })
    }
}

/// A multiplicative factor sanitized for [`ConfidenceClassifier::rescaled`]
/// and friends: non-finite or non-positive values become 1.0 (no-op).
///
/// [`ConfidenceClassifier::rescaled`]: crate::confidence::ConfidenceClassifier::rescaled
fn safe_factor(f: f64) -> f64 {
    if f.is_finite() && f > 0.0 {
        f
    } else {
        1.0
    }
}

/// Adjusts the calibration/config for a retry, keyed on the failure cause.
fn adjust_for_retry(
    calib: &mut SourceCalibration,
    cfg: &mut TasfarConfig,
    err: &AdaptError,
    policy: &RecoveryPolicy,
) {
    match &err.kind {
        // Too few confident samples: widen τ to admit more of the batch.
        ErrorKind::NoConfidentSamples { .. } => {
            calib.classifier = calib.classifier.rescaled(safe_factor(policy.tau_widen));
        }
        // Everything confident: tighten τ so some samples become uncertain.
        ErrorKind::NoUncertainSamples => {
            calib.classifier = calib
                .classifier
                .rescaled(1.0 / safe_factor(policy.tau_widen));
        }
        // Density degeneracies: widen the KDE grid cell so mass concentrates
        // in fewer, fuller bins. A degenerate cell is first reset to a sane
        // default, since multiplying garbage stays garbage.
        ErrorKind::ZeroDensityMass
        | ErrorKind::DegenerateBandwidth { .. }
        | ErrorKind::ZeroCredibility { .. } => {
            if !cfg.grid_cell.is_finite() || cfg.grid_cell <= 0.0 {
                cfg.grid_cell = 0.1;
            } else {
                cfg.grid_cell *= safe_factor(policy.bandwidth_widen);
            }
        }
        // Fine-tune divergence/explosion: back the learning rate off.
        ErrorKind::Train(_) => {
            let lr = cfg.learning_rate * safe_factor(policy.lr_backoff);
            if lr.is_finite() && lr > 0.0 {
                cfg.learning_rate = lr;
            }
        }
        // Unrecoverable kinds never reach here (the guard falls back first).
        _ => {}
    }
}

/// Runs [`adapt`] under the do-no-harm guard.
///
/// 1. Snapshots the model ([`CheckpointRegressor::checkpoint`]).
/// 2. Attempts the adaptation; on failure, restores the snapshot —
///    predictions are bit-identical to the pre-adaptation model.
/// 3. Recoverable failures spend the [`RecoveryPolicy`] retry budget, each
///    retry adjusting τ, the density grid cell, or the learning rate to
///    address the classified cause.
/// 4. Unrecoverable failures, or an exhausted budget, degrade to
///    [`GuardedOutcome::FellBackToSource`].
///
/// Also the entry point for chaos testing: the `TASFAR_CHAOS` environment
/// variable ([`crate::faultinject`]) is read here — once per process — so an
/// injected fault lands on the guarded adaptation, never on source-side
/// calibration.
pub fn adapt_guarded<M>(
    model: &mut M,
    calib: &SourceCalibration,
    target_x: &Tensor,
    loss: &dyn Loss,
    cfg: &TasfarConfig,
    policy: &RecoveryPolicy,
) -> GuardedOutcome
where
    M: StochasticRegressor + TrainableRegressor + CheckpointRegressor + ?Sized,
{
    faultinject::init_from_env();
    tasfar_obs::metrics::counter("guard.runs").incr();
    let mut span = tasfar_obs::timed_span("adapt_guarded");
    span.field("target_rows", target_x.rows());
    span.field("max_retries", policy.max_retries);

    let snapshot = model.checkpoint();
    let mut calib = calib.clone();
    let mut cfg = cfg.clone();
    let mut errors: Vec<AdaptError> = Vec::new();
    let mut retries = 0usize;

    let outcome = loop {
        match adapt(model, &calib, target_x, loss, &cfg) {
            Ok(outcome) => {
                if retries == 0 {
                    tasfar_obs::metrics::counter("guard.adapted").incr();
                    break GuardedOutcome::Adapted(outcome);
                }
                tasfar_obs::metrics::counter("guard.recovered").incr();
                break GuardedOutcome::Recovered {
                    outcome,
                    retries,
                    errors,
                };
            }
            Err(err) => {
                // Do-no-harm: a failed attempt may have touched the weights
                // (mid-fine-tune failures); always restore the snapshot.
                model.restore(&snapshot);
                tasfar_obs::metrics::counter("guard.rollbacks").incr();
                tasfar_obs::event(
                    "guard.rollback",
                    vec![
                        ("error", err.label().into()),
                        ("recoverable", err.recoverable().into()),
                        ("attempt", retries.into()),
                    ],
                );
                if !err.recoverable() || retries >= policy.max_retries {
                    tasfar_obs::metrics::counter("guard.fallbacks").incr();
                    break GuardedOutcome::FellBackToSource {
                        error: err,
                        retries,
                    };
                }
                tasfar_obs::metrics::counter("guard.retries").incr();
                adjust_for_retry(&mut calib, &mut cfg, &err, policy);
                errors.push(err);
                retries += 1;
            }
        }
    };
    span.field("outcome", outcome.label());
    span.field("retries", outcome.retries());
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::calibrate_on_source;
    use crate::confidence::ConfidenceClassifier;
    use tasfar_data::Dataset;
    use tasfar_nn::init::Init;
    use tasfar_nn::layers::{Dense, Dropout, Relu, Sequential};
    use tasfar_nn::loss::Mse;
    use tasfar_nn::optim::Adam;
    use tasfar_nn::rng::Rng;
    use tasfar_nn::train::{fit, TrainConfig};

    struct Toy {
        model: Sequential,
        source: Dataset,
        target_x: Tensor,
    }

    /// Same synthetic task shape as `adapt::tests::build_toy`, smaller.
    fn build_toy(seed: u64) -> Toy {
        let mut rng = Rng::new(seed);
        let n_src = 400;
        let mut xs = Tensor::zeros(n_src, 2);
        let mut ys = Tensor::zeros(n_src, 1);
        for i in 0..n_src {
            let y = rng.uniform(-1.0, 1.0);
            let hard = rng.bernoulli(0.05);
            let noise = if hard {
                rng.gaussian(0.0, 0.8)
            } else {
                rng.gaussian(0.0, 0.03)
            };
            xs.set(i, 0, y + noise);
            xs.set(
                i,
                1,
                if hard {
                    rng.uniform(3.0, 5.0)
                } else {
                    rng.uniform(0.0, 0.5)
                },
            );
            ys.set(i, 0, y);
        }
        let source = Dataset::new(xs, ys);

        let mut model = Sequential::new()
            .add(Dense::new(2, 24, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dropout::new(0.2, &mut rng))
            .add(Dense::new(24, 1, Init::XavierUniform, &mut rng));
        let mut opt = Adam::new(5e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &source.x,
            &source.y,
            None,
            &TrainConfig {
                epochs: 80,
                batch_size: 32,
                seed,
                ..TrainConfig::default()
            },
        );

        let n_tgt = 200;
        let mut xt = Tensor::zeros(n_tgt, 2);
        for i in 0..n_tgt {
            let y = rng.gaussian(0.6, 0.05);
            let hard = rng.bernoulli(0.4);
            let noise = if hard {
                rng.gaussian(0.0, 0.8)
            } else {
                rng.gaussian(0.0, 0.03)
            };
            xt.set(i, 0, y + noise);
            xt.set(
                i,
                1,
                if hard {
                    rng.uniform(3.0, 5.0)
                } else {
                    rng.uniform(0.0, 0.5)
                },
            );
        }
        Toy {
            model,
            source,
            target_x: xt,
        }
    }

    fn toy_config() -> TasfarConfig {
        TasfarConfig {
            grid_cell: 0.05,
            epochs: 30,
            learning_rate: 1e-3,
            early_stop: None,
            ..TasfarConfig::default()
        }
    }

    #[test]
    fn healthy_runs_adapt_without_retries() {
        let mut toy = build_toy(21);
        let cfg = toy_config();
        let calib = calibrate_on_source(&mut toy.model, &toy.source, &cfg).unwrap();
        let outcome = adapt_guarded(
            &mut toy.model,
            &calib,
            &toy.target_x,
            &Mse,
            &cfg,
            &RecoveryPolicy::default(),
        );
        assert_eq!(outcome.label(), "adapted");
        assert_eq!(outcome.retries(), 0);
        assert!(outcome.adaptation().is_some());
        assert!(!outcome.fell_back());
    }

    #[test]
    fn unrecoverable_failure_falls_back_and_restores_the_model() {
        let mut toy = build_toy(22);
        let cfg = toy_config();
        let calib = calibrate_on_source(&mut toy.model, &toy.source, &cfg).unwrap();
        let reference = toy.model.clone();
        let mut poisoned = toy.target_x.clone();
        poisoned.set(0, 0, f64::NAN);
        let outcome = adapt_guarded(
            &mut toy.model,
            &calib,
            &poisoned,
            &Mse,
            &cfg,
            &RecoveryPolicy::default(),
        );
        match &outcome {
            GuardedOutcome::FellBackToSource { error, retries } => {
                assert_eq!(error.label(), "non_finite_input");
                assert_eq!(*retries, 0, "fatal errors must not burn retries");
            }
            other => panic!("expected fallback, got {}", other.label()),
        }
        // Do-no-harm: predictions bit-identical to the pre-adaptation model.
        let mut m = toy.model.clone();
        let mut r = reference.clone();
        assert_eq!(
            m.predict(&toy.target_x).as_slice(),
            r.predict(&toy.target_x).as_slice()
        );
    }

    #[test]
    fn recoverable_failure_is_fixed_by_one_widening_retry() {
        let mut toy = build_toy(23);
        let cfg = toy_config();
        let calib = calibrate_on_source(&mut toy.model, &toy.source, &cfg).unwrap();
        // Shrink τ by exactly the factor one retry widens it back by: the
        // first attempt finds nothing confident, the retry runs healthy.
        let factor = 1e9;
        let broken = SourceCalibration {
            classifier: ConfidenceClassifier::from_tau(
                calib.classifier.tau / factor,
                calib.classifier.eta,
            ),
            qs: calib.qs.clone(),
            median_uncertainty: calib.median_uncertainty,
        };
        let policy = RecoveryPolicy {
            tau_widen: factor,
            ..RecoveryPolicy::default()
        };
        let outcome = adapt_guarded(&mut toy.model, &broken, &toy.target_x, &Mse, &cfg, &policy);
        match &outcome {
            GuardedOutcome::Recovered {
                retries, errors, ..
            } => {
                assert_eq!(*retries, 1);
                assert_eq!(errors.len(), 1);
                assert_eq!(errors[0].label(), "no_confident_samples");
            }
            other => panic!("expected recovery, got {}", other.label()),
        }
    }

    #[test]
    fn exhausted_budget_degrades_gracefully() {
        let mut toy = build_toy(24);
        let cfg = toy_config();
        let calib = calibrate_on_source(&mut toy.model, &toy.source, &cfg).unwrap();
        let reference = toy.model.clone();
        // τ so small that doubling it twice cannot help.
        let broken = SourceCalibration {
            classifier: ConfidenceClassifier::from_tau(1e-300, calib.classifier.eta),
            qs: calib.qs,
            median_uncertainty: calib.median_uncertainty,
        };
        let policy = RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        };
        let outcome = adapt_guarded(&mut toy.model, &broken, &toy.target_x, &Mse, &cfg, &policy);
        match &outcome {
            GuardedOutcome::FellBackToSource { error, retries } => {
                assert_eq!(error.label(), "no_confident_samples");
                assert!(error.recoverable());
                assert_eq!(*retries, 2, "the full budget was spent");
            }
            other => panic!("expected fallback, got {}", other.label()),
        }
        let mut m = toy.model.clone();
        let mut r = reference.clone();
        assert_eq!(
            m.predict(&toy.target_x).as_slice(),
            r.predict(&toy.target_x).as_slice()
        );
    }

    #[test]
    fn degenerate_policies_are_sanitized_not_fatal() {
        assert_eq!(safe_factor(f64::NAN), 1.0);
        assert_eq!(safe_factor(0.0), 1.0);
        assert_eq!(safe_factor(-3.0), 1.0);
        assert_eq!(safe_factor(f64::INFINITY), 1.0);
        assert_eq!(safe_factor(2.5), 2.5);

        // A policy full of garbage never panics the guarded path.
        let mut toy = build_toy(25);
        let cfg = toy_config();
        let calib = calibrate_on_source(&mut toy.model, &toy.source, &cfg).unwrap();
        let broken = SourceCalibration {
            classifier: ConfidenceClassifier::from_tau(1e-300, calib.classifier.eta),
            qs: calib.qs,
            median_uncertainty: calib.median_uncertainty,
        };
        let policy = RecoveryPolicy {
            max_retries: 1,
            lr_backoff: f64::NAN,
            bandwidth_widen: -1.0,
            tau_widen: f64::INFINITY,
        };
        let outcome = adapt_guarded(&mut toy.model, &broken, &toy.target_x, &Mse, &cfg, &policy);
        assert!(outcome.fell_back());
    }
}
