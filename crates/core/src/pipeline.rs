//! The staged TASFAR adaptation pipeline.
//!
//! [`crate::adapt::adapt`] used to be one 200-line monolith; it is now a thin
//! wrapper over five typed stages, each consuming and producing explicit
//! artifacts:
//!
//! ```text
//! Predict ──▶ Split ──▶ EstimateDensity ──▶ PseudoLabel ──▶ FineTune
//! McPrediction  ConfidenceSplit  DensityArtifacts  Vec<PseudoLabel>  FitReport
//! ```
//!
//! Every stage validates its inputs and returns a typed
//! [`AdaptError`] instead of panicking; each records a [`StageTrace`] —
//! wall time, sample counts, and the error label if the stage aborted — in
//! the [`PipelineTrace`] that travels with the
//! [`crate::adapt::AdaptationOutcome`]. The stages are
//! generic over the `tasfar_nn::model` traits
//! ([`StochasticRegressor`] for prediction, [`TrainableRegressor`] for the
//! fine-tune), so *any* regressor implementing them — not just
//! `Sequential` — can run the pipeline; `tasfar_nn::model::FnRegressor`
//! exercises this with a closure-backed mock.
//!
//! **Bit-compatibility contract**: the stage bodies preserve the monolith's
//! float-operation order, RNG stream order, and parallel chunk geometry
//! exactly. The golden-equivalence suite (`tests/golden_adapt.rs`) pins the
//! raw `f64` bit patterns across 1/4/default `TASFAR_THREADS`.
//!
//! **Telemetry**: every stage runs inside a `tasfar_obs` span (named
//! `stage.<name>`, carrying the sample counts and skip reason as fields),
//! and its wall time also feeds the always-on `pipeline.stage_ns.<name>`
//! histogram. [`StageTrace`] is now a *view* over the same measurement: the
//! wall time it records is the span's elapsed time, so trace and telemetry
//! can never disagree. Tracing is observational only — outputs are
//! bit-identical with `TASFAR_TRACE` on or off.

use std::time::Duration;

use crate::adapt::{scenario_classifier, BuiltMaps, SourceCalibration, TasfarConfig};
use crate::confidence::{ConfidenceClassifier, ConfidenceSplit};
use crate::density::{DensityMap1d, DensityMap2d, GridSpec};
use crate::error::{AdaptError, ErrorKind};
use crate::faultinject::{self, Fault};
use crate::pseudo::{PseudoLabel, PseudoLabelGenerator1d, PseudoLabelGenerator2d};
use crate::uncertainty::{McDropout, McPrediction};
use tasfar_nn::loss::Loss;
use tasfar_nn::model::{StochasticRegressor, TrainableRegressor};
use tasfar_nn::optim::Adam;
use tasfar_nn::parallel::{chunk_bounds, chunk_count, map_chunks};
use tasfar_nn::tensor::Tensor;
use tasfar_nn::train::{DivergenceGuard, FitReport, TrainConfig};

/// Uncertain samples pseudo-labelled per parallel chunk. Fixed (independent
/// of thread count) so the chunk geometry — and therefore the output — is
/// identical at any `TASFAR_THREADS`.
const PSEUDO_SAMPLES_PER_CHUNK: usize = 32;

/// The five pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// MC-dropout prediction on the target batch ([`predict_stage`]).
    Predict,
    /// Confidence thresholding at τ ([`split_stage`]).
    Split,
    /// Label-density estimation from the confident predictions, Algorithm 2
    /// ([`estimate_density_stage`]).
    EstimateDensity,
    /// Posterior-interpolated pseudo-labelling of the uncertain samples,
    /// Algorithm 3 ([`pseudo_label_stage`]).
    PseudoLabel,
    /// Credibility-weighted fine-tuning, Eq. 22 ([`finetune_stage`]).
    FineTune,
}

impl Stage {
    /// Stable display name (snake_case, log-friendly).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Predict => "predict",
            Stage::Split => "split",
            Stage::EstimateDensity => "estimate_density",
            Stage::PseudoLabel => "pseudo_label",
            Stage::FineTune => "fine_tune",
        }
    }

    /// The stage's trace span name (`stage.<name>`).
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::Predict => "stage.predict",
            Stage::Split => "stage.split",
            Stage::EstimateDensity => "stage.estimate_density",
            Stage::PseudoLabel => "stage.pseudo_label",
            Stage::FineTune => "stage.fine_tune",
        }
    }

    /// The stage's wall-time histogram name in the metrics registry.
    fn histogram_name(self) -> &'static str {
        match self {
            Stage::Predict => "pipeline.stage_ns.predict",
            Stage::Split => "pipeline.stage_ns.split",
            Stage::EstimateDensity => "pipeline.stage_ns.estimate_density",
            Stage::PseudoLabel => "pipeline.stage_ns.pseudo_label",
            Stage::FineTune => "pipeline.stage_ns.fine_tune",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage's execution record.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall-clock time the stage took.
    pub wall: Duration,
    /// Samples the stage received. Per stage: target rows (Predict, Split),
    /// confident samples (EstimateDensity), uncertain samples (PseudoLabel),
    /// assembled training rows (FineTune).
    pub samples_in: usize,
    /// Samples the stage produced. Per stage: predicted rows (Predict),
    /// uncertain samples (Split), confident samples used for the map
    /// (EstimateDensity), *informative* pseudo-labels (PseudoLabel),
    /// trained rows (FineTune). Zero when the stage was skipped.
    pub samples_out: usize,
    /// Why the stage aborted the pipeline, if it did — the
    /// [`AdaptError::label`] of the typed error it returned.
    pub skipped: Option<&'static str>,
}

/// The ordered stage records of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    /// Stage records in execution order; stages after a skip never run and
    /// therefore never appear.
    pub stages: Vec<StageTrace>,
}

impl PipelineTrace {
    /// The record of `stage`, if that stage ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageTrace> {
        self.stages.iter().find(|t| t.stage == stage)
    }

    /// The skip reason that aborted the pipeline, if any.
    pub fn skip_reason(&self) -> Option<&'static str> {
        self.stages.iter().find_map(|t| t.skipped)
    }

    /// Total wall-clock time across the recorded stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|t| t.wall).sum()
    }

    /// Closes a stage's span and records the matching [`StageTrace`]. The
    /// one `elapsed()` reading backs both the trace entry and the span's
    /// emitted `dur_ns`-adjacent wall figure, plus the stage histogram.
    fn record(
        &mut self,
        stage: Stage,
        mut span: tasfar_obs::SpanGuard,
        samples_in: usize,
        samples_out: usize,
        skipped: Option<&'static str>,
    ) {
        let wall = span.elapsed();
        span.field("samples_in", samples_in);
        span.field("samples_out", samples_out);
        // The measured stage wall also travels in the record itself, so
        // trace analytics can self-time a stage without trusting `dur_ns`
        // (which includes the serialisation overhead of the drop).
        span.field("wall_ns", wall.as_nanos() as u64);
        if let Some(reason) = skipped {
            span.field("skipped", reason);
        }
        tasfar_obs::metrics::histogram(stage.histogram_name()).record(wall.as_nanos() as u64);
        self.stages.push(StageTrace {
            stage,
            wall,
            samples_in,
            samples_out,
            skipped,
        });
        // `span` drops here, emitting the stage record when tracing is on.
    }

    /// Records a failing stage (zero samples out, the error's label as the
    /// abort reason) and returns the typed error for propagation.
    fn fail(
        &mut self,
        stage: Stage,
        span: tasfar_obs::SpanGuard,
        samples_in: usize,
        kind: ErrorKind,
    ) -> AdaptError {
        let err = AdaptError::at(stage, kind);
        self.record(stage, span, samples_in, 0, Some(err.label()));
        err
    }
}

/// Count of non-finite entries in a tensor (stage input validation).
fn non_finite(t: &Tensor) -> usize {
    t.as_slice().iter().filter(|v| !v.is_finite()).count()
}

/// What [`estimate_density_stage`] hands to [`pseudo_label_stage`]: the
/// estimated label-density map(s) plus the per-sample inputs the generator
/// needs for the uncertain set.
#[derive(Debug, Clone)]
pub struct DensityArtifacts {
    /// The estimated label-density map(s).
    pub maps: BuiltMaps,
    /// Point predictions of the uncertain samples, `(n_unc, d)`, aligned
    /// with `split.uncertain`.
    pub unc_pred: Tensor,
    /// Calibrated spreads σ = Q_s(u) of the uncertain samples, `(n_unc, d)`.
    pub unc_sigma: Tensor,
    /// The confidence threshold in effect for this batch (after any
    /// scenario rescaling) — the posterior-interpolation anchor.
    pub tau: f64,
}

/// **Stage 1 — Predict**: MC-dropout point predictions and uncertainty on
/// the batch.
///
/// # Errors
/// [`ErrorKind::NonFiniteInput`] when the target batch — or the model's MC
/// output — carries NaN/±∞ values. The input check runs *before* any
/// forward pass, so a poisoned batch never reaches the model.
pub fn predict_stage<M: StochasticRegressor + ?Sized>(
    model: &mut M,
    x: &Tensor,
    cfg: &TasfarConfig,
    trace: &mut PipelineTrace,
) -> Result<McPrediction, AdaptError> {
    let span = tasfar_obs::timed_span(Stage::Predict.span_name());
    let corrupted =
        faultinject::take(Fault::NanBatch).map(|seed| faultinject::nan_corrupted(x, seed));
    let x = corrupted.as_ref().unwrap_or(x);
    let bad = non_finite(x);
    if bad > 0 {
        return Err(trace.fail(
            Stage::Predict,
            span,
            x.rows(),
            ErrorKind::NonFiniteInput {
                what: "target batch",
                bad,
            },
        ));
    }
    let mc = McDropout::new(cfg.mc_samples)
        .relative(cfg.relative_uncertainty)
        .predict(model, x);
    let bad = non_finite(&mc.point)
        + non_finite(&mc.std)
        + mc.uncertainty.iter().filter(|u| !u.is_finite()).count();
    if bad > 0 {
        return Err(trace.fail(
            Stage::Predict,
            span,
            x.rows(),
            ErrorKind::NonFiniteInput {
                what: "MC-dropout prediction",
                bad,
            },
        ));
    }
    trace.record(Stage::Predict, span, x.rows(), mc.point.rows(), None);
    Ok(mc)
}

/// **Stage 2 — Split**: partitions the batch into confident/uncertain at the
/// (possibly scenario-rescaled) threshold τ. Returns the classifier actually
/// used, so downstream stages see the effective τ.
///
/// # Errors
/// [`ErrorKind::DegenerateBandwidth`] when the effective threshold τ is
/// non-finite or non-positive (nothing meaningful can be split). Degenerate
/// *partitions* — nothing confident, nothing uncertain — are classified by
/// [`estimate_density_stage`], which knows the configured minimum.
pub fn split_stage(
    calib: &SourceCalibration,
    cfg: &TasfarConfig,
    mc: &McPrediction,
    trace: &mut PipelineTrace,
) -> Result<(ConfidenceClassifier, ConfidenceSplit), AdaptError> {
    let span = tasfar_obs::timed_span(Stage::Split.span_name());
    let classifier = scenario_classifier(calib, cfg, &mc.uncertainty);
    if !classifier.tau.is_finite() || classifier.tau < 0.0 {
        let tau = classifier.tau;
        return Err(trace.fail(
            Stage::Split,
            span,
            mc.uncertainty.len(),
            ErrorKind::DegenerateBandwidth { value: tau },
        ));
    }
    let mut split = classifier.split(&mc.uncertainty);
    if faultinject::take(Fault::EmptyConfidentSplit).is_some() {
        // Simulate a batch where nothing clears τ: everything formerly
        // confident becomes uncertain (the partition invariant holds).
        split.uncertain.append(&mut split.confident);
        split.uncertain.sort_unstable();
    }
    trace.record(
        Stage::Split,
        span,
        mc.uncertainty.len(),
        split.uncertain.len(),
        None,
    );
    Ok((classifier, split))
}

/// Builds the grid for one label dimension around the confident predictions,
/// padded so the instance distributions fit on-grid.
fn dim_grid(
    preds: impl Iterator<Item = f64> + Clone,
    sigmas: impl Iterator<Item = f64>,
    cell: f64,
) -> GridSpec {
    let max_sigma = sigmas.fold(0.0_f64, f64::max);
    let lo = preds.clone().fold(f64::INFINITY, f64::min) - 4.0 * max_sigma;
    let hi = preds.fold(f64::NEG_INFINITY, f64::max) + 4.0 * max_sigma;
    GridSpec::from_range(lo, (hi).max(lo + cell), cell)
}

/// Per-dimension calibrated spreads for the given sample indices.
fn sigmas_for(mc: &McPrediction, calib: &SourceCalibration, indices: &[usize]) -> Tensor {
    let dims = mc.point.cols();
    let mut out = Tensor::zeros(indices.len(), dims);
    for (row, &i) in indices.iter().enumerate() {
        for d in 0..dims {
            out.set(row, d, calib.qs[d].sigma(mc.std.get(i, d)));
        }
    }
    out
}

/// **Stage 3 — EstimateDensity**: estimates the scenario's label density
/// map(s) from the confident predictions (Algorithm 2) and prepares the
/// uncertain samples' generator inputs.
///
/// # Errors
/// * [`ErrorKind::NoConfidentSamples`] — fewer confident samples than
///   `cfg.min_confident` (no prior can be estimated).
/// * [`ErrorKind::NoUncertainSamples`] — nothing needs pseudo-labels.
/// * [`ErrorKind::DegenerateBandwidth`] — the grid cell width or a
///   calibrated spread σ is non-finite/non-positive, so no grid can be
///   built.
/// * [`ErrorKind::ZeroDensityMass`] — the estimated map carries no
///   probability mass (a flat, uninformative prior; the paper's Fig. 22
///   failure signature taken to its limit).
pub fn estimate_density_stage(
    mc: &McPrediction,
    calib: &SourceCalibration,
    classifier: &ConfidenceClassifier,
    split: &ConfidenceSplit,
    cfg: &TasfarConfig,
    trace: &mut PipelineTrace,
) -> Result<DensityArtifacts, AdaptError> {
    let span = tasfar_obs::timed_span(Stage::EstimateDensity.span_name());
    let required = cfg.min_confident.max(1);
    if split.confident.len() < required {
        let found = split.confident.len();
        return Err(trace.fail(
            Stage::EstimateDensity,
            span,
            found,
            ErrorKind::NoConfidentSamples { found, required },
        ));
    }
    if split.uncertain.is_empty() {
        return Err(trace.fail(
            Stage::EstimateDensity,
            span,
            split.confident.len(),
            ErrorKind::NoUncertainSamples,
        ));
    }
    if !cfg.grid_cell.is_finite() || cfg.grid_cell <= 0.0 {
        return Err(trace.fail(
            Stage::EstimateDensity,
            span,
            split.confident.len(),
            ErrorKind::DegenerateBandwidth {
                value: cfg.grid_cell,
            },
        ));
    }

    let dims = mc.point.cols();
    let conf_sigma = sigmas_for(mc, calib, &split.confident);
    let conf_pred = mc.point.select_rows(&split.confident);
    let unc_sigma = sigmas_for(mc, calib, &split.uncertain);
    let unc_pred = mc.point.select_rows(&split.uncertain);

    // A non-finite spread would blow the grid bounds up to ±∞ (and the bin
    // count with them); a non-positive one degenerates the instance
    // distribution. Catch both before any grid is allocated.
    if let Some(&bad) = conf_sigma
        .as_slice()
        .iter()
        .chain(unc_sigma.as_slice())
        .find(|s| !s.is_finite() || **s <= 0.0)
    {
        return Err(trace.fail(
            Stage::EstimateDensity,
            span,
            split.confident.len(),
            ErrorKind::DegenerateBandwidth { value: bad },
        ));
    }

    let joint = cfg.joint_2d && dims == 2;
    let mut maps = if joint {
        let xgrid = dim_grid(conf_pred.col_iter(0), conf_sigma.col_iter(0), cfg.grid_cell);
        let ygrid = dim_grid(conf_pred.col_iter(1), conf_sigma.col_iter(1), cfg.grid_cell);
        BuiltMaps::Joint2d(DensityMap2d::estimate(
            &conf_pred,
            &conf_sigma,
            xgrid,
            ygrid,
            cfg.error_model,
        ))
    } else {
        // Independent per-dimension maps; a one-dimensional task reduces to
        // Eq. 21 exactly.
        BuiltMaps::PerDim(
            (0..dims)
                .map(|d| {
                    let preds_d = conf_pred.col(d);
                    let sigmas_d = conf_sigma.col(d);
                    let grid =
                        dim_grid(conf_pred.col_iter(d), conf_sigma.col_iter(d), cfg.grid_cell);
                    DensityMap1d::estimate(&preds_d, &sigmas_d, grid, cfg.error_model)
                })
                .collect(),
        )
    };
    if faultinject::take(Fault::ZeroDensityMass).is_some() {
        match &mut maps {
            BuiltMaps::Joint2d(m) => m.chaos_clear_mass(),
            BuiltMaps::PerDim(ms) => ms.iter_mut().for_each(DensityMap1d::chaos_clear_mass),
        }
    }
    // A massless map (or any massless dimension) yields all-fallback
    // pseudo-labels downstream; classify it here, where it originates.
    let min_mass = match &maps {
        BuiltMaps::Joint2d(m) => m.total_mass(),
        BuiltMaps::PerDim(ms) => ms
            .iter()
            .map(DensityMap1d::total_mass)
            .fold(f64::INFINITY, f64::min),
    };
    if min_mass.is_nan() || min_mass <= 0.0 {
        return Err(trace.fail(
            Stage::EstimateDensity,
            span,
            split.confident.len(),
            ErrorKind::ZeroDensityMass,
        ));
    }
    trace.record(
        Stage::EstimateDensity,
        span,
        split.confident.len(),
        split.confident.len(),
        None,
    );
    Ok(DensityArtifacts {
        maps,
        unc_pred,
        unc_sigma,
        tau: classifier.tau,
    })
}

/// **Stage 4 — PseudoLabel**: posterior-interpolates a pseudo-label for
/// every uncertain sample (Algorithm 3), in `split.uncertain` order.
///
/// The per-sample expectation over grid cells is independent across samples,
/// so both map variants run it through the parallel runtime in fixed-size
/// chunks and splice the per-chunk vectors back together in chunk order —
/// bit-identical for any thread count. Chunk geometry depends only on the
/// uncertain-set size.
///
/// # Errors
/// [`ErrorKind::NonFiniteInput`] when any generated pseudo-label value or
/// credibility is non-finite — corrupt labels must never reach the
/// fine-tune.
pub fn pseudo_label_stage(
    mc: &McPrediction,
    split: &ConfidenceSplit,
    density: &DensityArtifacts,
    cfg: &TasfarConfig,
    trace: &mut PipelineTrace,
) -> Result<Vec<PseudoLabel>, AdaptError> {
    let span = tasfar_obs::timed_span(Stage::PseudoLabel.span_name());
    let uncertain = &split.uncertain;
    let uncertainty = &mc.uncertainty;
    let unc_pred = &density.unc_pred;
    let unc_sigma = &density.unc_sigma;
    let tau = density.tau;
    let n_unc = uncertain.len();
    let n_chunks = chunk_count(n_unc, PSEUDO_SAMPLES_PER_CHUNK);

    let mut pseudo = Vec::with_capacity(n_unc);
    match &density.maps {
        BuiltMaps::Joint2d(map) => {
            let generator = PseudoLabelGenerator2d::new(map, tau, cfg.error_model);
            let chunks = map_chunks(n_chunks, |c| {
                chunk_bounds(n_unc, PSEUDO_SAMPLES_PER_CHUNK, c)
                    .map(|row| {
                        let i = uncertain[row];
                        generator.generate(
                            [unc_pred.get(row, 0), unc_pred.get(row, 1)],
                            [unc_sigma.get(row, 0), unc_sigma.get(row, 1)],
                            uncertainty[i].max(1e-12),
                        )
                    })
                    .collect::<Vec<_>>()
            });
            pseudo.extend(chunks.into_iter().flatten());
        }
        BuiltMaps::PerDim(maps) => {
            // Credibilities multiply geometric-mean style across dimensions.
            let dims = unc_pred.cols();
            let chunks = map_chunks(n_chunks, |c| {
                chunk_bounds(n_unc, PSEUDO_SAMPLES_PER_CHUNK, c)
                    .map(|row| {
                        let i = uncertain[row];
                        let mut value = Vec::with_capacity(dims);
                        let mut cred_product = 1.0;
                        let mut informative = true;
                        let mut ratio = 0.0;
                        for (d, map) in maps.iter().enumerate() {
                            let generator = PseudoLabelGenerator1d::new(map, tau, cfg.error_model);
                            let p = generator.generate(
                                unc_pred.get(row, d),
                                unc_sigma.get(row, d),
                                uncertainty[i].max(1e-12),
                            );
                            value.push(p.value[0]);
                            cred_product *= p.credibility;
                            informative &= p.informative;
                            ratio += p.local_density_ratio / dims as f64;
                        }
                        PseudoLabel {
                            value,
                            credibility: if informative {
                                cred_product.powf(1.0 / dims as f64)
                            } else {
                                0.0
                            },
                            local_density_ratio: ratio,
                            informative,
                        }
                    })
                    .collect::<Vec<_>>()
            });
            pseudo.extend(chunks.into_iter().flatten());
        }
    }
    let bad = pseudo
        .iter()
        .flat_map(|p| p.value.iter())
        .filter(|v| !v.is_finite())
        .count()
        + pseudo.iter().filter(|p| !p.credibility.is_finite()).count();
    if bad > 0 {
        return Err(trace.fail(
            Stage::PseudoLabel,
            span,
            n_unc,
            ErrorKind::NonFiniteInput {
                what: "pseudo-labels",
                bad,
            },
        ));
    }
    let informative = pseudo.iter().filter(|p| p.informative).count();
    trace.record(Stage::PseudoLabel, span, n_unc, informative, None);
    Ok(pseudo)
}

/// **Stage 5 — FineTune**: assembles the credibility-weighted training set
/// (pseudo-labelled uncertain rows, plus self-labelled confident replay when
/// `cfg.replay_confident`) and fine-tunes the model via
/// [`TrainableRegressor::fit_weighted`] (Eq. 22). The fine-tune runs under
/// a [`DivergenceGuard`], so a loss blowing past 8× its epoch-0 baseline
/// aborts with a typed error instead of silently wrecking the weights.
///
/// # Errors
/// * [`ErrorKind::ZeroCredibility`] — every training weight is zero; the
///   model is left untouched.
/// * [`ErrorKind::Train`] — the fine-tune itself failed (non-finite loss,
///   divergence, shape mismatch). The model may hold partially fine-tuned
///   weights; [`crate::guard::adapt_guarded`] rolls back to the snapshot.
#[allow(clippy::too_many_arguments)]
pub fn finetune_stage<M: TrainableRegressor + ?Sized>(
    model: &mut M,
    target_x: &Tensor,
    mc: &McPrediction,
    split: &ConfidenceSplit,
    pseudo: &[PseudoLabel],
    loss: &dyn Loss,
    cfg: &TasfarConfig,
    trace: &mut PipelineTrace,
) -> Result<FitReport, AdaptError> {
    let span = tasfar_obs::timed_span(Stage::FineTune.span_name());
    let dims = mc.point.cols();
    let n_unc = split.uncertain.len();
    let n_conf = if cfg.replay_confident {
        split.confident.len()
    } else {
        0
    };
    let mut train_x_rows = Vec::with_capacity(n_unc + n_conf);
    let mut train_y = Tensor::zeros(n_unc + n_conf, dims);
    let mut weights = Vec::with_capacity(n_unc + n_conf);

    for (row, &i) in split.uncertain.iter().enumerate() {
        train_x_rows.push(i);
        for d in 0..dims {
            train_y.set(row, d, pseudo[row].value[d]);
        }
        weights.push(if cfg.use_credibility {
            pseudo[row].credibility
        } else if pseudo[row].informative {
            1.0
        } else {
            0.0
        });
    }
    if cfg.replay_confident {
        for (row, &i) in split.confident.iter().enumerate() {
            train_x_rows.push(i);
            for d in 0..dims {
                train_y.set(n_unc + row, d, mc.point.get(i, d));
            }
            weights.push(1.0);
        }
    }

    if weights.iter().sum::<f64>() <= 0.0 {
        return Err(trace.fail(
            Stage::FineTune,
            span,
            n_unc + n_conf,
            ErrorKind::ZeroCredibility { labels: n_unc },
        ));
    }

    let exploding;
    let loss: &dyn Loss = if faultinject::take(Fault::LossExplosion).is_some() {
        exploding = faultinject::ExplodingLoss::new();
        &exploding
    } else {
        loss
    };

    let train_x = target_x.select_rows(&train_x_rows);
    let mut optimizer = Adam::new(cfg.learning_rate);
    let report = model.fit_weighted(
        &mut optimizer,
        loss,
        &train_x,
        &train_y,
        Some(&weights),
        &TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            shuffle: true,
            early_stop: cfg.early_stop.clone(),
            mode: if cfg.finetune_dropout {
                tasfar_nn::layers::Mode::Train
            } else {
                tasfar_nn::layers::Mode::Eval
            },
            // `train_observer()` is Some only when tracing is enabled, so
            // the untraced fine-tune loop stays free of clock reads.
            observer: tasfar_obs::train_observer(),
            divergence: Some(DivergenceGuard::default()),
            ..TrainConfig::default()
        },
    );
    match report {
        Ok(report) => {
            trace.record(Stage::FineTune, span, n_unc + n_conf, n_unc + n_conf, None);
            Ok(report)
        }
        Err(e) => Err(trace.fail(Stage::FineTune, span, n_unc + n_conf, ErrorKind::Train(e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let all = [
            Stage::Predict,
            Stage::Split,
            Stage::EstimateDensity,
            Stage::PseudoLabel,
            Stage::FineTune,
        ];
        let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "predict",
                "split",
                "estimate_density",
                "pseudo_label",
                "fine_tune"
            ]
        );
        assert_eq!(Stage::PseudoLabel.to_string(), "pseudo_label");
    }

    #[test]
    fn trace_lookup_and_totals() {
        let mut trace = PipelineTrace::default();
        let span = |stage: Stage| tasfar_obs::timed_span(stage.span_name());
        trace.record(Stage::Predict, span(Stage::Predict), 10, 10, None);
        trace.record(Stage::Split, span(Stage::Split), 10, 4, None);
        trace.record(
            Stage::EstimateDensity,
            span(Stage::EstimateDensity),
            6,
            0,
            Some("boom"),
        );
        assert_eq!(trace.stages.len(), 3);
        assert_eq!(trace.stage(Stage::Split).unwrap().samples_out, 4);
        assert!(trace.stage(Stage::FineTune).is_none());
        assert_eq!(trace.skip_reason(), Some("boom"));
        assert_eq!(
            trace.total_wall(),
            trace.stages.iter().map(|t| t.wall).sum()
        );
    }

    #[test]
    fn empty_trace_has_no_skip() {
        let trace = PipelineTrace::default();
        assert_eq!(trace.skip_reason(), None);
        assert_eq!(trace.total_wall(), Duration::ZERO);
    }
}
