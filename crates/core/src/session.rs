//! Per-tenant adaptation sessions over one shared frozen source model.
//!
//! The serving-runtime counterpart of [`crate::partition`]: where
//! `adapt_partitioned_shared` adapts a fixed set of groups in one offline
//! sweep, a [`TenantSession`] owns the *recipe* (source calibration, TASFAR
//! config, adapter config, recovery policy) and applies it to one tenant at
//! a time, on demand, against a shared model the caller keeps parked on the
//! source state between tenants:
//!
//! 1. [`TenantSession::prepare_shared`] clones the frozen source model,
//!    attaches low-rank adapters, and returns the model together with its
//!    delta-only *init checkpoint* (zero factors + source running state).
//! 2. [`TenantSession::adapt_delta`] restores the init checkpoint, warm
//!    starts from the tenant's prior [`DeltaArtifact`] when one exists,
//!    runs [`crate::guard::adapt_guarded`] (so one tenant's divergence
//!    can't poison the shared model — the guard rolls back to the warm
//!    start), exports the refreshed delta, and re-parks the model on the
//!    source state.
//!
//! A stale prior (captured under a different architecture or rank) is
//! dropped — the tenant adapts from the zero delta instead — rather than
//! panicking the serving shard.

use tasfar_nn::adapter::AdapterConfig;
use tasfar_nn::layers::Sequential;
use tasfar_nn::loss::Loss;
use tasfar_nn::model::{CheckpointRegressor, SeqCheckpoint};
use tasfar_nn::rng::Rng;
use tasfar_nn::spec::DeltaArtifact;
use tasfar_nn::tensor::Tensor;

use crate::adapt::{SourceCalibration, TasfarConfig};
use crate::guard::{adapt_guarded, GuardedOutcome, RecoveryPolicy};

/// The per-tenant adaptation recipe: everything needed to turn one tenant's
/// unlabeled batch into a refreshed [`DeltaArtifact`], guarded.
#[derive(Debug, Clone)]
pub struct TenantSession {
    calib: SourceCalibration,
    cfg: TasfarConfig,
    adapter_cfg: AdapterConfig,
    policy: RecoveryPolicy,
}

impl TenantSession {
    /// A session with the default [`RecoveryPolicy`].
    pub fn new(calib: SourceCalibration, cfg: TasfarConfig, adapter_cfg: AdapterConfig) -> Self {
        TenantSession {
            calib,
            cfg,
            adapter_cfg,
            policy: RecoveryPolicy::default(),
        }
    }

    /// Overrides the recovery policy.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The adapter configuration tenants' deltas are captured under.
    pub fn adapter_config(&self) -> &AdapterConfig {
        &self.adapter_cfg
    }

    /// Clones the frozen source model, attaches adapters, and returns it
    /// parked on the *init checkpoint* (zero delta factors + source running
    /// state) alongside that checkpoint. The checkpoint is delta-sized; the
    /// caller restores it to detach any tenant's delta in O(delta) work.
    ///
    /// # Panics
    /// Panics when the source model has no adapter-capable layers — a
    /// serving shard without a delta subspace cannot host tenants.
    pub fn prepare_shared(
        &self,
        source: &Sequential,
        rng: &mut Rng,
    ) -> (Sequential, SeqCheckpoint) {
        let mut model = source.clone();
        let attached = tasfar_nn::adapter::enable_adapters(&mut model, &self.adapter_cfg, rng);
        assert!(
            attached > 0,
            "TenantSession::prepare_shared: the source model has no adapter-capable layers"
        );
        let init = model.checkpoint();
        debug_assert!(init.is_delta());
        (model, init)
    }

    /// Adapts the shared model to one tenant's unlabeled batch under the
    /// guard, returning the guarded outcome and the tenant's delta going
    /// forward:
    ///
    /// - on success (`Adapted`/`Recovered`), the freshly captured artifact;
    /// - on `FellBackToSource`, the prior artifact unchanged (the guard
    ///   rolled the model back to the warm start), or `None` if the tenant
    ///   had never adapted.
    ///
    /// A `prior` that no longer fits the model (stale rank/architecture) is
    /// discarded and the adaptation warm starts from the zero delta; the
    /// `session.stale_prior` counter records the drop. The model is always
    /// re-parked on `init` before returning, whatever the outcome.
    #[allow(clippy::too_many_arguments)]
    pub fn adapt_delta(
        &self,
        model: &mut Sequential,
        init: &SeqCheckpoint,
        tenant: u64,
        prior: Option<&DeltaArtifact>,
        target_x: &Tensor,
        loss: &dyn Loss,
        rng: &mut Rng,
    ) -> (GuardedOutcome, Option<DeltaArtifact>) {
        let mut span = tasfar_obs::timed_span("tenant_session.adapt");
        span.field("tenant", tenant);
        span.field("rows", target_x.rows());
        span.field("warm_start", prior.is_some());

        model.restore(init);
        let mut prior = prior;
        if let Some(p) = prior {
            if let Err(e) = p.try_apply(model, rng) {
                // try_apply validates before mutating, so the model is
                // still parked on init: adapt from the zero delta.
                tasfar_obs::metrics::counter("session.stale_prior").incr();
                tasfar_obs::event(
                    "session.stale_prior",
                    vec![("tenant", tenant.into()), ("error", e.to_string().into())],
                );
                prior = None;
            }
        }

        let outcome = adapt_guarded(model, &self.calib, target_x, loss, &self.cfg, &self.policy);
        let artifact = if outcome.fell_back() {
            prior.cloned()
        } else {
            Some(DeltaArtifact::capture(model, &self.adapter_cfg))
        };
        model.restore(init);
        span.field("outcome", outcome.label());
        (outcome, artifact)
    }
}
