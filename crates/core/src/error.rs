//! Typed failure taxonomy for the adaptation pipeline.
//!
//! Every fallible step of the TASFAR pipeline reports an [`AdaptError`]
//! instead of panicking: which [`Stage`] failed (when one was running), what
//! went wrong ([`ErrorKind`]), and — the axis the recovery layer keys on —
//! whether a retry with adjusted hyper-parameters can plausibly succeed
//! ([`AdaptError::recoverable`]). Unrecoverable failures (corrupt inputs,
//! empty batches, caller bugs) go straight to graceful degradation in
//! [`crate::guard::adapt_guarded`]; recoverable ones (degenerate splits,
//! massless density maps, diverging fine-tunes) earn bounded retries.

use crate::pipeline::Stage;
use std::fmt;
use tasfar_nn::error::TrainError;

/// What went wrong during calibration or adaptation.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// An input or intermediate tensor carried NaN/±∞ values. `what` names
    /// the offending quantity, `bad` counts the non-finite entries.
    NonFiniteInput {
        /// The quantity that failed the finiteness check.
        what: &'static str,
        /// How many entries were non-finite.
        bad: usize,
    },
    /// The target batch had no rows.
    EmptyTargetBatch,
    /// The source dataset for calibration had no rows.
    EmptySource,
    /// The confidence split left fewer confident samples than the
    /// configured minimum — no label prior can be estimated.
    NoConfidentSamples {
        /// Confident samples found.
        found: usize,
        /// `TasfarConfig::min_confident` (at least 1).
        required: usize,
    },
    /// The confidence split left no uncertain samples — nothing to
    /// pseudo-label.
    NoUncertainSamples,
    /// The estimated density map carries no probability mass.
    ZeroDensityMass,
    /// The density grid/bandwidth is degenerate (non-finite or
    /// non-positive), so no map can be built.
    DegenerateBandwidth {
        /// The offending cell width or spread value.
        value: f64,
    },
    /// Every pseudo-label carried zero credibility, leaving an all-zero
    /// training weight vector.
    ZeroCredibility {
        /// Pseudo-labels produced before the weights zeroed out.
        labels: usize,
    },
    /// A streaming sliding window holds too few samples for the requested
    /// operation (a micro-batch fine-tune or a re-adaptation). Recoverable:
    /// the stream may simply not have delivered enough data yet.
    WindowUnderflow {
        /// Samples currently in the window.
        have: usize,
        /// Samples the operation needs.
        need: usize,
    },
    /// The fine-tune (or a baseline's training loop) failed.
    Train(TrainError),
    /// A baseline that needs source data was run without it.
    MissingSource {
        /// The baseline that required the data.
        baseline: &'static str,
    },
}

/// A classified failure of [`crate::adapt::adapt`],
/// [`crate::adapt::calibrate_on_source`], or a baseline adapter.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptError {
    /// The pipeline stage that failed; `None` for failures outside the
    /// staged pipeline (pre-flight validation, calibration, baselines).
    pub stage: Option<Stage>,
    /// The failure classification.
    pub kind: ErrorKind,
}

impl AdaptError {
    /// An error outside any pipeline stage.
    pub fn new(kind: ErrorKind) -> AdaptError {
        AdaptError { stage: None, kind }
    }

    /// An error attributed to a pipeline stage.
    pub fn at(stage: Stage, kind: ErrorKind) -> AdaptError {
        AdaptError {
            stage: Some(stage),
            kind,
        }
    }

    /// Whether a retry with adjusted hyper-parameters (wider τ or grid
    /// cell, smaller learning rate) can plausibly succeed. Corrupt or empty
    /// inputs cannot be retried away; degenerate splits, massless maps, and
    /// diverging fine-tunes can.
    pub fn recoverable(&self) -> bool {
        match &self.kind {
            ErrorKind::NoConfidentSamples { .. }
            | ErrorKind::NoUncertainSamples
            | ErrorKind::ZeroDensityMass
            | ErrorKind::DegenerateBandwidth { .. }
            | ErrorKind::ZeroCredibility { .. }
            | ErrorKind::WindowUnderflow { .. } => true,
            ErrorKind::Train(e) => e.recoverable(),
            ErrorKind::NonFiniteInput { .. }
            | ErrorKind::EmptyTargetBatch
            | ErrorKind::EmptySource
            | ErrorKind::MissingSource { .. } => false,
        }
    }

    /// Stable snake_case label for metrics, span fields, and traces.
    pub fn label(&self) -> &'static str {
        match &self.kind {
            ErrorKind::NonFiniteInput { .. } => "non_finite_input",
            ErrorKind::EmptyTargetBatch => "empty_target_batch",
            ErrorKind::EmptySource => "empty_source",
            ErrorKind::NoConfidentSamples { .. } => "no_confident_samples",
            ErrorKind::NoUncertainSamples => "no_uncertain_samples",
            ErrorKind::ZeroDensityMass => "zero_density_mass",
            ErrorKind::DegenerateBandwidth { .. } => "degenerate_bandwidth",
            ErrorKind::ZeroCredibility { .. } => "zero_credibility",
            ErrorKind::WindowUnderflow { .. } => "window_underflow",
            ErrorKind::Train(_) => "train",
            ErrorKind::MissingSource { .. } => "missing_source",
        }
    }
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(stage) = self.stage {
            write!(f, "stage `{stage}`: ")?;
        }
        match &self.kind {
            ErrorKind::NonFiniteInput { what, bad } => {
                write!(f, "{what} contains {bad} non-finite value(s)")
            }
            ErrorKind::EmptyTargetBatch => write!(f, "adapt: empty target batch"),
            ErrorKind::EmptySource => write!(f, "calibrate_on_source: empty source dataset"),
            ErrorKind::NoConfidentSamples { found, required } => write!(
                f,
                "no confident data to estimate the label distribution \
                 ({found} confident, {required} required)"
            ),
            ErrorKind::NoUncertainSamples => write!(f, "no uncertain data to pseudo-label"),
            ErrorKind::ZeroDensityMass => {
                write!(f, "the estimated label density map carries no mass")
            }
            ErrorKind::DegenerateBandwidth { value } => {
                write!(f, "degenerate density bandwidth ({value})")
            }
            ErrorKind::ZeroCredibility { labels } => write!(
                f,
                "all pseudo-labels carry zero credibility ({labels} label(s))"
            ),
            ErrorKind::WindowUnderflow { have, need } => write!(
                f,
                "sliding window holds {have} sample(s) but the operation needs {need}"
            ),
            ErrorKind::Train(e) => write!(f, "fine-tune failed: {e}"),
            ErrorKind::MissingSource { baseline } => {
                write!(f, "{baseline} requires source data (`source` was None)")
            }
        }
    }
}

impl std::error::Error for AdaptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ErrorKind::Train(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for AdaptError {
    fn from(e: TrainError) -> AdaptError {
        AdaptError::at(Stage::FineTune, ErrorKind::Train(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverability_matches_the_taxonomy() {
        let recoverable = [
            ErrorKind::NoConfidentSamples {
                found: 0,
                required: 1,
            },
            ErrorKind::NoUncertainSamples,
            ErrorKind::ZeroDensityMass,
            ErrorKind::DegenerateBandwidth { value: f64::NAN },
            ErrorKind::ZeroCredibility { labels: 3 },
            ErrorKind::WindowUnderflow { have: 0, need: 32 },
            ErrorKind::Train(TrainError::NonFinite {
                loss: f64::NAN,
                epoch: 0,
            }),
        ];
        for kind in recoverable {
            assert!(AdaptError::new(kind.clone()).recoverable(), "{kind:?}");
        }
        let fatal = [
            ErrorKind::NonFiniteInput {
                what: "target batch",
                bad: 2,
            },
            ErrorKind::EmptyTargetBatch,
            ErrorKind::EmptySource,
            ErrorKind::MissingSource { baseline: "mmd" },
            ErrorKind::Train(TrainError::EmptyDataset),
        ];
        for kind in fatal {
            assert!(!AdaptError::new(kind.clone()).recoverable(), "{kind:?}");
        }
    }

    #[test]
    fn display_names_the_stage_and_cause() {
        let err = AdaptError::at(
            Stage::EstimateDensity,
            ErrorKind::NoConfidentSamples {
                found: 0,
                required: 4,
            },
        );
        let text = err.to_string();
        assert!(text.contains("estimate_density"), "{text}");
        assert!(text.contains("0 confident, 4 required"), "{text}");
        assert_eq!(err.label(), "no_confident_samples");
    }

    #[test]
    fn train_errors_chain_as_source() {
        use std::error::Error;
        let err: AdaptError = TrainError::Diverged {
            loss: 80.0,
            baseline: 1.0,
            factor: 8.0,
            epoch: 3,
        }
        .into();
        assert_eq!(err.stage, Some(Stage::FineTune));
        assert!(err.source().is_some());
        assert!(err.recoverable());
    }
}
