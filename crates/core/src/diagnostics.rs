//! Human-readable diagnostics of an adaptation run.
//!
//! Operators deploying TASFAR need to judge, *without labels*, whether an
//! adaptation was healthy: did the confidence split produce a usable
//! partition, did the density map carry structure, did the credibilities
//! spread, did the fine-tune converge. [`AdaptationDiagnostics`] condenses
//! an [`AdaptationOutcome`] into exactly those label-free indicators.

use crate::adapt::{AdaptationOutcome, BuiltMaps};
use std::fmt;

/// Label-free health indicators of one *successful* adaptation run.
///
/// Failed runs never produce an [`AdaptationOutcome`] — they report a typed
/// [`crate::error::AdaptError`] instead, which carries its own stage, cause,
/// and recoverability classification.
#[derive(Debug, Clone)]
pub struct AdaptationDiagnostics {
    /// Samples in the target batch.
    pub batch_size: usize,
    /// Share classified uncertain.
    pub uncertain_ratio: f64,
    /// Share of pseudo-labels that were informative (non-fallback).
    pub informative_ratio: f64,
    /// Credibility distribution quartiles `(q25, median, q75)`.
    pub credibility_quartiles: (f64, f64, f64),
    /// Mean absolute shift between predictions and pseudo-labels, per label
    /// dimension — how hard the prior is pulling.
    pub mean_pseudo_shift: Vec<f64>,
    /// Density-map concentration: the share of total mass in the densest
    /// 10 % of cells (≈0.1 for a flat map; →1 for a spiked map). A flat map
    /// means the scenario prior is uninformative (the paper's Fig. 22
    /// failure signature).
    pub map_concentration: f64,
    /// Fine-tune epochs actually run.
    pub epochs_run: usize,
    /// First-to-last training-loss ratio (>1 means the loss fell).
    pub loss_improvement: f64,
}

fn quartiles(values: &mut [f64]) -> (f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    values.sort_by(f64::total_cmp);
    let at = |q: f64| values[((values.len() - 1) as f64 * q).round() as usize];
    // The midpoint quartile is the shared selection-based median so the two
    // call sites (here and `adapt.rs`) cannot drift apart.
    (at(0.25), crate::stats::median(values), at(0.75))
}

fn concentration(mut masses: Vec<f64>) -> f64 {
    let total: f64 = masses.iter().sum();
    if total <= 0.0 || masses.is_empty() {
        return 0.0;
    }
    masses.sort_by(|a, b| b.total_cmp(a));
    let top = (masses.len() as f64 * 0.1).ceil() as usize;
    masses.iter().take(top.max(1)).sum::<f64>() / total
}

impl AdaptationDiagnostics {
    /// Summarises an adaptation outcome.
    pub fn from_outcome(outcome: &AdaptationOutcome) -> Self {
        let batch_size = outcome.split.confident.len() + outcome.split.uncertain.len();
        let informative = outcome.pseudo.iter().filter(|p| p.informative).count();
        let mut creds: Vec<f64> = outcome
            .pseudo
            .iter()
            .filter(|p| p.informative)
            .map(|p| p.credibility)
            .collect();
        let credibility_quartiles = quartiles(&mut creds);

        let dims = outcome.mc.point.cols();
        let mut shift = vec![0.0; dims];
        for (row, &i) in outcome.split.uncertain.iter().enumerate() {
            for (d, s) in shift.iter_mut().enumerate() {
                *s += (outcome.pseudo[row].value[d] - outcome.mc.point.get(i, d)).abs();
            }
        }
        if !outcome.split.uncertain.is_empty() {
            for s in &mut shift {
                *s /= outcome.split.uncertain.len() as f64;
            }
        }

        let map_concentration = match &outcome.maps {
            BuiltMaps::Joint2d(m) => concentration(m.masses().to_vec()),
            BuiltMaps::PerDim(maps) => {
                let per: Vec<f64> = maps
                    .iter()
                    .map(|m| concentration(m.masses().to_vec()))
                    .collect();
                per.iter().sum::<f64>() / per.len().max(1) as f64
            }
        };

        let loss_improvement = match (
            outcome.fit.epoch_losses.first(),
            outcome.fit.epoch_losses.last(),
        ) {
            (Some(&first), Some(&last)) if last > 0.0 => first / last,
            _ => 1.0,
        };

        AdaptationDiagnostics {
            batch_size,
            uncertain_ratio: outcome.split.uncertain_ratio(),
            informative_ratio: if outcome.pseudo.is_empty() {
                0.0
            } else {
                informative as f64 / outcome.pseudo.len() as f64
            },
            credibility_quartiles,
            mean_pseudo_shift: shift,
            map_concentration,
            epochs_run: outcome.fit.epoch_losses.len(),
            loss_improvement,
        }
    }

    /// A coarse verdict: `true` when the run shows the signatures of a
    /// productive adaptation (some uncertain data, informative
    /// pseudo-labels, a structured map, a falling loss).
    pub fn looks_healthy(&self) -> bool {
        self.uncertain_ratio > 0.01
            && self.informative_ratio > 0.5
            && self.map_concentration > 0.2
            && self.loss_improvement > 1.0
    }
}

impl fmt::Display for AdaptationDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "adaptation diagnostics")?;
        writeln!(f, "  batch size          {}", self.batch_size)?;
        writeln!(
            f,
            "  uncertain ratio     {:.1}%",
            100.0 * self.uncertain_ratio
        )?;
        writeln!(
            f,
            "  informative pseudo  {:.1}%",
            100.0 * self.informative_ratio
        )?;
        let (q25, q50, q75) = self.credibility_quartiles;
        writeln!(f, "  credibility q25/50/75  {q25:.3} / {q50:.3} / {q75:.3}")?;
        let shifts: Vec<String> = self
            .mean_pseudo_shift
            .iter()
            .map(|s| format!("{s:.4}"))
            .collect();
        writeln!(f, "  mean pseudo shift   [{}]", shifts.join(", "))?;
        writeln!(
            f,
            "  map concentration   {:.2} (top-10% cells' mass share)",
            self.map_concentration
        )?;
        writeln!(
            f,
            "  fine-tune           {} epochs, loss fell {:.2}x",
            self.epochs_run, self.loss_improvement
        )?;
        writeln!(
            f,
            "  verdict             {}",
            if self.looks_healthy() {
                "healthy"
            } else {
                "check the indicators above"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::{adapt, calibrate_on_source, TasfarConfig};
    use tasfar_data::Dataset;
    use tasfar_nn::prelude::*;

    fn toy_outcome(cluster: f64) -> AdaptationOutcome {
        let mut rng = Rng::new(31);
        let n_src = 500;
        let mut xs = Tensor::zeros(n_src, 2);
        let mut ys = Tensor::zeros(n_src, 1);
        for i in 0..n_src {
            let y = rng.uniform(-1.0, 1.0);
            let hard = rng.bernoulli(0.05);
            let noise = if hard {
                rng.gaussian(0.0, 0.8)
            } else {
                rng.gaussian(0.0, 0.03)
            };
            xs.set(i, 0, y + noise);
            xs.set(
                i,
                1,
                if hard {
                    rng.uniform(3.0, 5.0)
                } else {
                    rng.uniform(0.0, 0.5)
                },
            );
            ys.set(i, 0, y);
        }
        let source = Dataset::new(xs, ys);
        let mut model = Sequential::new()
            .add(Dense::new(2, 24, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dropout::new(0.2, &mut rng))
            .add(Dense::new(24, 1, Init::XavierUniform, &mut rng));
        let mut opt = Adam::new(5e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &source.x,
            &source.y,
            None,
            &TrainConfig {
                epochs: 100,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        let cfg = TasfarConfig {
            grid_cell: 0.05,
            epochs: 30,
            early_stop: None,
            ..TasfarConfig::default()
        };
        let calib = calibrate_on_source(&mut model, &source, &cfg).unwrap();
        let mut xt = Tensor::zeros(300, 2);
        for i in 0..300 {
            let y = rng.gaussian(cluster, 0.05);
            let hard = rng.bernoulli(0.4);
            let noise = if hard {
                rng.gaussian(0.0, 0.8)
            } else {
                rng.gaussian(0.0, 0.03)
            };
            xt.set(i, 0, y + noise);
            xt.set(
                i,
                1,
                if hard {
                    rng.uniform(3.0, 5.0)
                } else {
                    rng.uniform(0.0, 0.5)
                },
            );
        }
        adapt(&mut model, &calib, &xt, &Mse, &cfg).expect("healthy toy batch adapts")
    }

    #[test]
    fn healthy_run_is_diagnosed_healthy() {
        let outcome = toy_outcome(0.5);
        let diag = AdaptationDiagnostics::from_outcome(&outcome);
        assert!(diag.uncertain_ratio > 0.05);
        assert!(diag.informative_ratio > 0.9);
        assert!(
            diag.map_concentration > 0.3,
            "clustered labels ⇒ spiked map, got {}",
            diag.map_concentration
        );
        assert!(diag.loss_improvement > 1.0);
        assert!(diag.looks_healthy());
        // Display renders without panicking and mentions the verdict.
        let text = diag.to_string();
        assert!(text.contains("healthy"));
    }

    #[test]
    fn quartiles_are_ordered() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let (q25, q50, q75) = quartiles(&mut v);
        assert!(q25 <= q50 && q50 <= q75);
        assert_eq!(q50, 3.0);
    }

    #[test]
    fn quartiles_of_tiny_slices_collapse_to_the_data() {
        // One informative pseudo-label: every quartile is that value.
        let mut one = vec![7.5];
        assert_eq!(quartiles(&mut one), (7.5, 7.5, 7.5));
        // Two values: the rounded index selection pins q25/q75 to the
        // extremes while the shared median takes the midpoint.
        let mut two = vec![2.0, 1.0];
        assert_eq!(quartiles(&mut two), (1.0, 1.5, 2.0));
        // Empty (no informative pseudo-labels at all) degrades to zeros
        // rather than panicking in `stats::median`.
        assert_eq!(quartiles(&mut []), (0.0, 0.0, 0.0));
    }

    #[test]
    fn concentration_of_zero_mass_map_is_zero() {
        // An all-zero mass map (density estimation degenerated) must not
        // divide by the zero total; the flat-map signature 0.0 comes back.
        assert_eq!(concentration(vec![0.0; 64]), 0.0);
        assert_eq!(concentration(vec![0.0]), 0.0);
    }

    #[test]
    fn concentration_extremes() {
        // Flat map: top-10% holds ~10%.
        let flat = vec![1.0; 100];
        assert!((concentration(flat) - 0.1).abs() < 1e-9);
        // Spiked map: everything in one cell.
        let mut spiked = vec![0.0; 100];
        spiked[42] = 1.0;
        assert_eq!(concentration(spiked), 1.0);
        // Degenerate inputs.
        assert_eq!(concentration(Vec::new()), 0.0);
        assert_eq!(concentration(vec![0.0; 10]), 0.0);
    }
}
