//! Uncertainty→error calibration: the function Q_s (paper Eq. 6–9).
//!
//! TASFAR models the label of each confident sample as a distribution
//! centred on the prediction with a spread that grows with the model's
//! uncertainty (Eq. 5). The spread function `σ = Q_s(u)` is fitted on the
//! *source* data — where errors are observable — by splitting the samples
//! into `q` uncertainty segments, estimating the error standard deviation in
//! each, and fitting a first-order least-squares line through the segment
//! statistics (Eq. 7–9). The fit ships with the model, so no target labels
//! are ever needed.
//!
//! The distributional *form* of the instance-label model is pluggable
//! ([`ErrorModel`]); the paper's Fig. 8 ablates Gaussian against other
//! spreads and finds TASFAR insensitive to the choice.

use tasfar_nn::json::{enum_variant, FromJson, Json, JsonError, ToJson};

/// The distribution family used for instance-label distributions, all
/// parameterised by mean and *standard deviation* so they are directly
/// interchangeable (Fig. 8's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorModel {
    /// Normal distribution (the paper's default, Eq. 5).
    #[default]
    Gaussian,
    /// Laplace distribution with matching standard deviation.
    Laplace,
    /// Uniform distribution with matching standard deviation.
    Uniform,
}

impl ErrorModel {
    /// CDF of the distribution with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics (debug) if `std <= 0`.
    pub fn cdf(self, x: f64, mean: f64, std: f64) -> f64 {
        debug_assert!(std > 0.0, "ErrorModel::cdf: std must be positive");
        let z = x - mean;
        match self {
            ErrorModel::Gaussian => 0.5 * (1.0 + erf(z / (std * std::f64::consts::SQRT_2))),
            ErrorModel::Laplace => {
                // Laplace scale b with std σ: σ² = 2b² ⇒ b = σ/√2.
                let b = std / std::f64::consts::SQRT_2;
                if z < 0.0 {
                    0.5 * (z / b).exp()
                } else {
                    1.0 - 0.5 * (-z / b).exp()
                }
            }
            ErrorModel::Uniform => {
                // Uniform on [−a, a] with std σ: a = σ√3.
                let a = std * 3f64.sqrt();
                ((z + a) / (2.0 * a)).clamp(0.0, 1.0)
            }
        }
    }

    /// Probability mass of the interval `[lo, hi)` under the distribution.
    pub fn interval_mass(self, lo: f64, hi: f64, mean: f64, std: f64) -> f64 {
        debug_assert!(lo <= hi, "interval_mass: lo > hi");
        (self.cdf(hi, mean, std) - self.cdf(lo, mean, std)).max(0.0)
    }

    /// Half-width (in multiples of the standard deviation) beyond which the
    /// tail mass is negligible (< ~1e-10). Used to truncate density-map
    /// accumulation; Laplace needs a wider window than Gaussian because of
    /// its heavier tails, Uniform has compact support at √3σ.
    pub fn support_halfwidth_sigmas(self) -> f64 {
        match self {
            ErrorModel::Gaussian => 8.0,
            ErrorModel::Laplace => 18.0,
            ErrorModel::Uniform => 2.0,
        }
    }
}

impl ToJson for ErrorModel {
    fn to_json_value(&self) -> Json {
        Json::Str(
            match self {
                ErrorModel::Gaussian => "Gaussian",
                ErrorModel::Laplace => "Laplace",
                ErrorModel::Uniform => "Uniform",
            }
            .to_string(),
        )
    }
}

impl FromJson for ErrorModel {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        match enum_variant(v)? {
            ("Gaussian", _) => Ok(ErrorModel::Gaussian),
            ("Laplace", _) => Ok(ErrorModel::Laplace),
            ("Uniform", _) => Ok(ErrorModel::Uniform),
            (other, _) => Err(JsonError::new(format!("unknown ErrorModel `{other}`"))),
        }
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (absolute error < 1.5e-7 — far below the density-map grid resolution).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Statistics of one uncertainty segment (the points the line is fitted to).
#[derive(Debug, Clone)]
pub struct SegmentStat {
    /// Mean uncertainty of the segment, `u_s^(q')`.
    pub mean_uncertainty: f64,
    /// Standard deviation of the signed errors in the segment, `e_σ^(q')`.
    pub error_std: f64,
    /// Number of samples in the segment.
    pub count: usize,
}

impl ToJson for SegmentStat {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("mean_uncertainty", Json::Num(self.mean_uncertainty)),
            ("error_std", Json::Num(self.error_std)),
            ("count", Json::from(self.count)),
        ])
    }
}

impl FromJson for SegmentStat {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(SegmentStat {
            mean_uncertainty: v.field("mean_uncertainty")?.as_f64()?,
            error_std: v.field("error_std")?.as_f64()?,
            count: v.field("count")?.as_usize()?,
        })
    }
}

/// The fitted calibration `σ = a₀ + a₁·u` for one label dimension.
#[derive(Debug, Clone)]
pub struct QsCalibration {
    /// Intercept `a₀` (Eq. 9).
    pub a0: f64,
    /// Slope `a₁` (Eq. 9).
    pub a1: f64,
    /// The segment statistics the line was fitted through.
    pub segments: Vec<SegmentStat>,
    /// Floor applied by [`QsCalibration::sigma`] so downstream code never
    /// receives a degenerate spread (smallest observed segment std / 10,
    /// itself floored at 1e-9).
    pub sigma_floor: f64,
}

impl ToJson for QsCalibration {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("a0", Json::Num(self.a0)),
            ("a1", Json::Num(self.a1)),
            ("segments", self.segments.to_json_value()),
            ("sigma_floor", Json::Num(self.sigma_floor)),
        ])
    }
}

impl FromJson for QsCalibration {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(QsCalibration {
            a0: v.field("a0")?.as_f64()?,
            a1: v.field("a1")?.as_f64()?,
            segments: Vec::<SegmentStat>::from_json_value(v.field("segments")?)?,
            sigma_floor: v.field("sigma_floor")?.as_f64()?,
        })
    }
}

impl QsCalibration {
    /// Fits Q_s from per-sample source uncertainties and signed errors.
    ///
    /// The samples are sorted by uncertainty and split into `q` (nearly)
    /// equal segments; each yields one `(mean u, error std)` point; the
    /// line is the closed-form least-squares solution of Eq. 9. When the
    /// fitted slope is negative (possible under tiny `q` or noise), it is
    /// clamped to zero and the intercept refitted as the mean — a constant,
    /// conservative spread.
    ///
    /// # Panics
    /// Panics if the slices are empty or disagree in length, or `q == 0`.
    pub fn fit(uncertainties: &[f64], errors: &[f64], q: usize) -> Self {
        assert_eq!(
            uncertainties.len(),
            errors.len(),
            "QsCalibration: {} uncertainties vs {} errors",
            uncertainties.len(),
            errors.len()
        );
        assert!(!uncertainties.is_empty(), "QsCalibration: no samples");
        assert!(q > 0, "QsCalibration: q must be positive");

        let mut order: Vec<usize> = (0..uncertainties.len()).collect();
        order.sort_by(|&a, &b| uncertainties[a].total_cmp(&uncertainties[b]));

        let q = q.min(uncertainties.len());
        let per = uncertainties.len() / q;
        let mut segments = Vec::with_capacity(q);
        for s in 0..q {
            let lo = s * per;
            let hi = if s == q - 1 {
                uncertainties.len()
            } else {
                (s + 1) * per
            };
            let idx = &order[lo..hi];
            if idx.is_empty() {
                continue;
            }
            let mean_u = idx.iter().map(|&i| uncertainties[i]).sum::<f64>() / idx.len() as f64;
            let mean_e = idx.iter().map(|&i| errors[i]).sum::<f64>() / idx.len() as f64;
            let var_e = idx
                .iter()
                .map(|&i| (errors[i] - mean_e).powi(2))
                .sum::<f64>()
                / idx.len() as f64;
            segments.push(SegmentStat {
                mean_uncertainty: mean_u,
                error_std: var_e.sqrt(),
                count: idx.len(),
            });
        }

        let (a0, a1) = least_squares(&segments);
        let min_std = segments
            .iter()
            .map(|s| s.error_std)
            .fold(f64::INFINITY, f64::min);
        QsCalibration {
            a0,
            a1,
            segments,
            sigma_floor: (min_std / 10.0).max(1e-9),
        }
    }

    /// Evaluates `σ = a₀ + a₁·u`, floored at `sigma_floor`.
    pub fn sigma(&self, u: f64) -> f64 {
        (self.a0 + self.a1 * u).max(self.sigma_floor)
    }
}

/// Closed-form least squares of Eq. 9 over the segment points, with the
/// negative-slope clamp described on [`QsCalibration::fit`].
fn least_squares(segments: &[SegmentStat]) -> (f64, f64) {
    let n = segments.len() as f64;
    let mean_u: f64 = segments.iter().map(|s| s.mean_uncertainty).sum::<f64>() / n;
    let mean_e: f64 = segments.iter().map(|s| s.error_std).sum::<f64>() / n;
    let num: f64 = segments
        .iter()
        .map(|s| s.mean_uncertainty * s.error_std)
        .sum::<f64>()
        - n * mean_u * mean_e;
    let den: f64 = segments
        .iter()
        .map(|s| s.mean_uncertainty.powi(2))
        .sum::<f64>()
        - n * mean_u * mean_u;
    if den.abs() < 1e-15 {
        return (mean_e, 0.0); // all segments share one uncertainty level
    }
    let a1 = num / den;
    if a1 < 0.0 {
        (mean_e, 0.0)
    } else {
        (mean_e - a1 * mean_u, a1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_nn::rng::Rng;

    #[test]
    fn erf_reference_values() {
        // erf(0) = 0, erf(∞) → 1, erf(1) ≈ 0.8427007929. The rational
        // approximation is accurate to ~1.5e-7, not exact.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn cdfs_are_monotone_and_normalised() {
        for model in [
            ErrorModel::Gaussian,
            ErrorModel::Laplace,
            ErrorModel::Uniform,
        ] {
            let mut prev = -1.0;
            for k in -50..=50 {
                let x = k as f64 * 0.2;
                let c = model.cdf(x, 0.0, 1.0);
                assert!((0.0..=1.0).contains(&c), "{model:?} cdf({x}) = {c}");
                assert!(c >= prev, "{model:?} cdf must be monotone");
                prev = c;
            }
            assert!(
                (model.cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-9,
                "{model:?} median at mean"
            );
            assert!(model.cdf(100.0, 0.0, 1.0) > 0.999_99);
            assert!(model.cdf(-100.0, 0.0, 1.0) < 1e-5);
        }
    }

    #[test]
    fn all_models_share_the_standard_deviation() {
        // Numerically integrate x² dF(x) and confirm std ≈ 1 for each model.
        for model in [
            ErrorModel::Gaussian,
            ErrorModel::Laplace,
            ErrorModel::Uniform,
        ] {
            let mut var = 0.0;
            let step = 0.01;
            let mut x = -12.0;
            while x < 12.0 {
                let mass = model.interval_mass(x, x + step, 0.0, 1.0);
                let mid = x + step / 2.0;
                var += mid * mid * mass;
                x += step;
            }
            assert!(
                (var - 1.0).abs() < 0.01,
                "{model:?}: variance {var} should be ≈ 1"
            );
        }
    }

    #[test]
    fn interval_mass_sums_to_one() {
        let total: f64 = (-60..60)
            .map(|k| {
                ErrorModel::Gaussian.interval_mass(k as f64 * 0.2, (k + 1) as f64 * 0.2, 0.0, 1.0)
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fit_recovers_a_linear_relationship() {
        // Errors drawn with std = 0.5 + 2u: the fit should recover it.
        let mut rng = Rng::new(1);
        let mut us = Vec::new();
        let mut es = Vec::new();
        for _ in 0..20_000 {
            let u = rng.uniform(0.1, 1.0);
            us.push(u);
            es.push(rng.gaussian(0.0, 0.5 + 2.0 * u));
        }
        let q = QsCalibration::fit(&us, &es, 40);
        assert!((q.a1 - 2.0).abs() < 0.25, "slope {}", q.a1);
        assert!((q.a0 - 0.5).abs() < 0.15, "intercept {}", q.a0);
        assert_eq!(q.segments.len(), 40);
        // σ evaluations interpolate the relationship.
        assert!((q.sigma(0.5) - 1.5).abs() < 0.2);
    }

    #[test]
    fn sixty_eight_percent_of_errors_fall_within_sigma() {
        // The paper's definition of Q_s: ~68 % of source errors below Q_s(u).
        let mut rng = Rng::new(2);
        let mut us = Vec::new();
        let mut es = Vec::new();
        for _ in 0..20_000 {
            let u = rng.uniform(0.2, 0.8);
            us.push(u);
            es.push(rng.gaussian(0.0, 1.0 + u));
        }
        let q = QsCalibration::fit(&us, &es, 30);
        let within = us
            .iter()
            .zip(&es)
            .filter(|(&u, &e)| e.abs() <= q.sigma(u))
            .count() as f64
            / us.len() as f64;
        assert!((within - 0.683).abs() < 0.03, "coverage {within}");
    }

    #[test]
    fn negative_slope_is_clamped_to_constant() {
        // Anti-correlated data: spread shrinks with u. The clamp yields a
        // constant σ equal to the mean segment std.
        let mut rng = Rng::new(3);
        let mut us = Vec::new();
        let mut es = Vec::new();
        for _ in 0..5_000 {
            let u = rng.uniform(0.1, 1.0);
            us.push(u);
            es.push(rng.gaussian(0.0, 2.0 - u));
        }
        let q = QsCalibration::fit(&us, &es, 20);
        assert_eq!(q.a1, 0.0);
        assert!(q.a0 > 0.5);
        assert_eq!(q.sigma(0.1), q.sigma(5.0));
    }

    #[test]
    fn sigma_never_degenerates() {
        let q = QsCalibration::fit(&[0.1, 0.2, 0.3, 0.4], &[0.0, 0.0, 0.0, 0.0], 2);
        assert!(q.sigma(0.0) > 0.0);
        assert!(q.sigma(-10.0) > 0.0);
    }

    #[test]
    fn q_larger_than_samples_is_tolerated() {
        let q = QsCalibration::fit(&[0.1, 0.9], &[0.05, 0.5], 40);
        assert!(q.segments.len() <= 2);
        assert!(q.sigma(0.5).is_finite());
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_panics() {
        QsCalibration::fit(&[], &[], 10);
    }
}
