//! Streaming online adaptation: sliding window, incremental density, and
//! guarded re-adaptation.
//!
//! The batch API ([`crate::adapt::adapt`]) assumes the target scenario is a
//! static set. Real deployments (PDR traces, virtual sensors) see target
//! samples as an unbounded *stream* whose distribution moves. This module
//! turns adaptation into a long-running, fault-tolerant process:
//!
//! * **[`StreamSource`]** — where samples come from: a push API
//!   ([`StreamAdapter::push`]) plus replayable synthetic feeds
//!   ([`ReplayStream`]).
//! * **Sliding window** — every ingested sample is MC-predicted once
//!   (fused dropout passes), classified against τ, and cached; the oldest
//!   samples are evicted as the window slides.
//! * **[`IncrementalKde`]** — the label-density map over the window updates
//!   by *incremental bin add/evict*, no full recompute. Contributions are
//!   quantised to integer ticks, whose addition is exact and
//!   order-independent, so the incremental state is **bit-identical** to a
//!   from-scratch rebuild of the same window (property-tested in
//!   `tests/stream_window.rs`).
//! * **Micro-batch fine-tuning** — pseudo-labelling and fine-tuning run in
//!   micro-batches *through the existing typed pipeline stages*
//!   ([`crate::pipeline::pseudo_label_stage`],
//!   [`crate::pipeline::finetune_stage`]), so streaming runs carry the same
//!   stage spans, histograms, and typed errors as batch runs.
//! * **Drift → guarded re-adaptation** — a [`DriftDetector`] watches
//!   uncertainty and density-mass-shift statistics; on trip the engine
//!   re-adapts over the whole window through [`adapt_guarded`]'s
//!   snapshot/rollback path, and if even that fails it **degrades to the
//!   last good checkpoint** (a few-KB delta when the adapter subspace is
//!   on) rather than shipping a wrecked model.
//!
//! Mid-stream chaos ([`crate::faultinject`]): NaN bursts are rejected at
//! ingest, window starvation produces typed
//! [`ErrorKind::WindowUnderflow`] errors, detector flaps are absorbed by
//! the cooldown, and re-adaptation loss explosions exhaust the retry budget
//! and fall back to the last good state — never a panic, never silent
//! corruption.

use std::collections::VecDeque;

use crate::adapt::{BuiltMaps, SourceCalibration, TasfarConfig};
use crate::calibration::ErrorModel;
use crate::confidence::ConfidenceSplit;
use crate::density::{DensityMap1d, GridSpec};
use crate::drift::{DriftConfig, DriftDetector, DriftObservation};
use crate::error::{AdaptError, ErrorKind};
use crate::faultinject::{self, Fault};
use crate::guard::{adapt_guarded, GuardedOutcome, RecoveryPolicy};
use crate::pipeline::{finetune_stage, pseudo_label_stage, DensityArtifacts, PipelineTrace};
use crate::uncertainty::{McDropout, McPrediction};
use tasfar_nn::loss::Loss;
use tasfar_nn::model::{CheckpointRegressor, StochasticRegressor, TrainableRegressor};
use tasfar_nn::tensor::Tensor;
use tasfar_nn::window::RollingStats;

// ---------------------------------------------------------------------------
// Stream sources
// ---------------------------------------------------------------------------

/// A source of target-sample chunks for [`StreamAdapter::run`].
pub trait StreamSource {
    /// The next chunk of target rows, or `None` when the stream is
    /// exhausted. Chunks may vary in row count but must share the feature
    /// width.
    fn next_chunk(&mut self) -> Option<Tensor>;
}

/// A replayable synthetic feed: serves a fixed tensor in fixed-size chunks.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    data: Tensor,
    chunk: usize,
    pos: usize,
}

impl ReplayStream {
    /// Wraps `data`, serving `chunk` rows per [`StreamSource::next_chunk`]
    /// call (a zero chunk size is bumped to one).
    pub fn new(data: Tensor, chunk: usize) -> ReplayStream {
        ReplayStream {
            data,
            chunk: chunk.max(1),
            pos: 0,
        }
    }

    /// Rewinds to the beginning, so the same feed can be replayed.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Rows left to serve.
    pub fn remaining(&self) -> usize {
        self.data.rows().saturating_sub(self.pos)
    }
}

impl StreamSource for ReplayStream {
    fn next_chunk(&mut self) -> Option<Tensor> {
        if self.pos >= self.data.rows() {
            return None;
        }
        let hi = (self.pos + self.chunk).min(self.data.rows());
        let chunk = self.data.slice_rows(self.pos, hi);
        self.pos = hi;
        Some(chunk)
    }
}

// ---------------------------------------------------------------------------
// Incremental KDE
// ---------------------------------------------------------------------------

/// Mass quantisation scale: one unit of probability mass is `2^42` ticks.
/// The quantisation error per (sample, bin) is at most half a tick
/// (~1.1e-13 mass) — far below anything the density consumers resolve —
/// and in exchange every bin total is an exact integer.
const MASS_TICKS: f64 = (1u64 << 42) as f64;

/// A label-density estimator over a sliding window with exact incremental
/// add/evict.
///
/// Floating-point accumulation is not reversible: `(a + b) - a` generally
/// differs from `b` in the last bits, so a subtract-on-evict f64 estimator
/// would drift away from a from-scratch rebuild. This estimator quantises
/// each sample's per-bin contribution to integer *ticks* — a pure function
/// of `(μ, σ, bin)` — and accumulates ticks in `u64`. Integer addition is
/// exact, associative, and commutative, so after any sequence of adds and
/// evicts the tick counts (and therefore the [`IncrementalKde::snapshot`]
/// masses, bit for bit) equal those of a fresh estimator fed only the
/// surviving samples.
///
/// The grid is fixed at construction: a sliding window cannot re-derive its
/// grid per update without invalidating previous contributions. Mass beyond
/// the grid is dropped, exactly like the batch estimator's off-grid
/// leakage.
#[derive(Debug, Clone)]
pub struct IncrementalKde {
    spec: GridSpec,
    model: ErrorModel,
    ticks: Vec<u64>,
    samples: usize,
}

impl IncrementalKde {
    /// An empty estimator on a fixed grid.
    pub fn new(spec: GridSpec, model: ErrorModel) -> IncrementalKde {
        IncrementalKde {
            ticks: vec![0; spec.bins],
            spec,
            model,
            samples: 0,
        }
    }

    /// The fixed grid.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Samples currently contributing to the estimate.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Whether any on-grid mass is held.
    pub fn has_mass(&self) -> bool {
        self.ticks.iter().any(|&t| t > 0)
    }

    /// The quantised per-bin contribution of one sample, as `(bin, ticks)`
    /// pairs over the error model's effective support (the same support
    /// window as [`DensityMap1d::estimate`]).
    fn contribution(&self, mu: f64, sigma: f64, mut sink: impl FnMut(usize, u64)) {
        let half = self.model.support_halfwidth_sigmas();
        let spec = &self.spec;
        let lo_cell = spec.index_of(mu - half * sigma).unwrap_or(0);
        let hi_cell = if mu + half * sigma >= spec.origin + spec.span() {
            spec.bins
        } else {
            spec.index_of(mu + half * sigma)
                .map(|i| (i + 1).min(spec.bins))
                .unwrap_or(0)
        };
        for i in lo_cell..hi_cell {
            let (a, b) = spec.edges(i);
            let t = (self.model.interval_mass(a, b, mu, sigma) * MASS_TICKS).round() as u64;
            sink(i, t);
        }
    }

    /// Whether a sample is usable: the instance distribution needs a
    /// finite centre and a positive finite spread.
    fn usable(mu: f64, sigma: f64) -> bool {
        mu.is_finite() && sigma.is_finite() && sigma > 0.0
    }

    /// Adds one sample's instance-label distribution `N(μ, σ²)` to the
    /// estimate. Samples with a non-finite `μ` or non-positive/non-finite
    /// `σ` are skipped entirely (not counted) — the matching
    /// [`IncrementalKde::evict`] skips them symmetrically.
    pub fn add(&mut self, mu: f64, sigma: f64) {
        if !Self::usable(mu, sigma) {
            return;
        }
        let mut staged: Vec<(usize, u64)> = Vec::new();
        self.contribution(mu, sigma, |i, t| staged.push((i, t)));
        for (i, t) in staged {
            self.ticks[i] += t;
        }
        self.samples += 1;
    }

    /// Removes a previously added sample. Must only be called with a
    /// `(μ, σ)` pair that was added and not yet evicted — the contribution
    /// is recomputed, and because quantised ticks are a pure function of
    /// `(μ, σ, bin)`, the subtraction removes *exactly* what the add put
    /// in. Evicting a never-added sample is a caller bug; the subtraction
    /// saturates at zero rather than panicking.
    pub fn evict(&mut self, mu: f64, sigma: f64) {
        if !Self::usable(mu, sigma) {
            return;
        }
        let mut staged: Vec<(usize, u64)> = Vec::new();
        self.contribution(mu, sigma, |i, t| staged.push((i, t)));
        for (i, t) in staged {
            self.ticks[i] = self.ticks[i].saturating_sub(t);
        }
        self.samples = self.samples.saturating_sub(1);
    }

    /// Materialises the current estimate as a [`DensityMap1d`], normalised
    /// by the contributing sample count (the Eq. 12 normalisation). The
    /// masses are a pure function of the tick counts, so two estimators
    /// with equal ticks and sample counts snapshot bit-identically. An
    /// empty estimator snapshots to an all-zero map.
    pub fn snapshot(&self) -> DensityMap1d {
        let inv = if self.samples == 0 {
            0.0
        } else {
            1.0 / self.samples as f64
        };
        let mass: Vec<f64> = self
            .ticks
            .iter()
            .map(|&t| (t as f64 / MASS_TICKS) * inv)
            .collect();
        DensityMap1d::from_masses(self.spec.clone(), mass)
    }

    /// The on-grid mass normalised to sum 1 (shape only, for
    /// distribution-shift comparison). Empty when no mass is held.
    pub fn normalized_masses(&self) -> Vec<f64> {
        let total: u64 = self.ticks.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let inv = 1.0 / total as f64;
        self.ticks.iter().map(|&t| t as f64 * inv).collect()
    }
}

// ---------------------------------------------------------------------------
// Engine configuration & reporting
// ---------------------------------------------------------------------------

/// Sliding-window and micro-batch geometry for [`StreamAdapter`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Sliding-window capacity in samples.
    pub window: usize,
    /// Samples ingested before the grids freeze and the initial guarded
    /// adaptation runs (clamped to the window capacity).
    pub warmup: usize,
    /// Uncertain samples per pseudo-label fine-tune micro-batch.
    pub micro_batch: usize,
    /// Fine-tune epochs per micro-batch (small — micro-batches are frequent).
    pub micro_epochs: usize,
    /// Confident replay rows appended to each micro-batch (the streaming
    /// equivalent of `TasfarConfig::replay_confident`).
    pub replay_confident: usize,
    /// Live sub-window length for drift statistics (clamped to `window`).
    pub live_window: usize,
    /// Drift-detector cadence: one check every this many ingested samples.
    pub check_every: usize,
    /// Frozen-grid span multiplier around the warmup window's predictions.
    /// Headroom lets the incremental density keep tracking moderate drift
    /// without the cluster walking off-grid.
    pub grid_headroom: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 512,
            warmup: 256,
            micro_batch: 32,
            micro_epochs: 8,
            replay_confident: 32,
            live_window: 64,
            check_every: 8,
            grid_headroom: 3.0,
        }
    }
}

/// Terminal outcome of the engine's most recent guarded (re-)adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOutcome {
    /// The guarded adaptation succeeded first try.
    Adapted,
    /// The guarded adaptation succeeded after retries.
    Recovered,
    /// Every attempt failed; the model was restored to the last good
    /// checkpoint (initially the source model).
    DegradedLastGood,
}

impl StreamOutcome {
    /// Stable label for metrics, span fields, and reports.
    pub fn label(self) -> &'static str {
        match self {
            StreamOutcome::Adapted => "adapted",
            StreamOutcome::Recovered => "recovered",
            StreamOutcome::DegradedLastGood => "degraded-to-last-good",
        }
    }
}

/// Where the engine is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPhase {
    /// Still filling the window; no adaptation has run yet.
    Warmup,
    /// Past warmup; carries the most recent (re-)adaptation outcome.
    Steady(StreamOutcome),
}

impl StreamPhase {
    /// Stable label (`warmup`, or the outcome's label).
    pub fn label(self) -> &'static str {
        match self {
            StreamPhase::Warmup => "warmup",
            StreamPhase::Steady(o) => o.label(),
        }
    }
}

/// What one [`StreamAdapter::push`] call did.
#[derive(Debug, Clone, Default)]
pub struct StreamTick {
    /// Rows accepted into the window.
    pub ingested: usize,
    /// Rows rejected at ingest validation (non-finite values, width
    /// mismatch, or unusable calibrated spread).
    pub rejected: usize,
    /// Micro-batch fine-tunes run.
    pub micro_batches: usize,
    /// The typed error of a skipped/failed micro-batch or re-adaptation,
    /// if any (the engine continues either way).
    pub error: Option<AdaptError>,
    /// The detector observation (score decomposition and trip decision),
    /// when a drift check ran.
    pub drift: Option<DriftObservation>,
    /// The outcome of a (re-)adaptation triggered by this push.
    pub readapt: Option<StreamOutcome>,
}

/// Accumulated counters over a [`StreamAdapter`]'s lifetime.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Rows accepted into the window.
    pub ingested: usize,
    /// Rows rejected at ingest validation.
    pub rejected: usize,
    /// Micro-batch fine-tunes completed.
    pub micro_batches: usize,
    /// Micro-batch fine-tunes that failed and were rolled back.
    pub micro_rollbacks: usize,
    /// Drift-detector trips.
    pub trips: usize,
    /// Sample index (ingested count) at each trip.
    pub trip_samples: Vec<usize>,
    /// Guarded (re-)adaptation runs, including the warmup adaptation.
    pub readapts: usize,
    /// Re-adaptations that degraded to the last good checkpoint.
    pub degraded: usize,
    /// Wall time of each (re-)adaptation, milliseconds.
    pub readapt_walls_ms: Vec<f64>,
    /// Outcome of the most recent (re-)adaptation.
    pub last_outcome: Option<StreamOutcome>,
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// One window sample with its cached per-ingest prediction state.
#[derive(Debug, Clone)]
struct WindowEntry {
    x: Vec<f64>,
    pred: Vec<f64>,
    std: Vec<f64>,
    sigma: Vec<f64>,
    uncertainty: f64,
    confident: bool,
    /// Whether every calibrated spread is finite and positive; entries
    /// failing this are quarantined from both the density and the
    /// pseudo-label micro-batches.
    valid_sigma: bool,
}

/// A live-ring entry: just what the live density needs.
#[derive(Debug, Clone)]
struct LiveEntry {
    pred: Vec<f64>,
    sigma: Vec<f64>,
    confident: bool,
}

/// The incremental streaming adaptation engine.
///
/// Owns the model. Ingest samples with [`StreamAdapter::push`] (or drive a
/// [`StreamSource`] with [`StreamAdapter::run`]); query the adapted model
/// any time with [`StreamAdapter::predict`].
pub struct StreamAdapter<M>
where
    M: StochasticRegressor + TrainableRegressor + CheckpointRegressor,
{
    model: M,
    calib: SourceCalibration,
    cfg: TasfarConfig,
    stream_cfg: StreamConfig,
    policy: RecoveryPolicy,
    detector: DriftDetector,

    window: VecDeque<WindowEntry>,
    /// One per label dimension once the grids freeze at warmup.
    kdes: Vec<IncrementalKde>,
    live: VecDeque<LiveEntry>,
    live_kdes: Vec<IncrementalKde>,
    live_unc: RollingStats,

    dims: usize,
    input_width: Option<usize>,
    samples_seen: usize,
    last_check: usize,
    pending_uncertain: usize,
    micro_count: u64,

    last_good: M::Checkpoint,
    phase: StreamPhase,
    report: StreamReport,
}

impl<M> StreamAdapter<M>
where
    M: StochasticRegressor + TrainableRegressor + CheckpointRegressor,
{
    /// Builds an engine around a calibrated model. The model's current
    /// state becomes the first "last good" checkpoint, so even a stream
    /// whose every adaptation fails can only degrade back to the source
    /// model (do-no-harm, extended in time).
    ///
    /// Also the streaming entry point for chaos testing: `TASFAR_CHAOS` is
    /// read here (once per process), so mid-stream faults armed from the
    /// environment land on the stream, not on source-side calibration.
    ///
    /// # Errors
    /// [`ErrorKind::WindowUnderflow`] when the window capacity is zero or
    /// smaller than the micro-batch — a window that cannot hold one
    /// micro-batch can never fine-tune.
    pub fn new(
        mut model: M,
        calib: SourceCalibration,
        cfg: TasfarConfig,
        stream_cfg: StreamConfig,
        drift_cfg: DriftConfig,
        policy: RecoveryPolicy,
    ) -> Result<Self, AdaptError> {
        faultinject::init_from_env();
        if stream_cfg.window == 0 {
            return Err(AdaptError::new(ErrorKind::WindowUnderflow {
                have: 0,
                need: 1,
            }));
        }
        let micro_batch = stream_cfg.micro_batch.max(1);
        if stream_cfg.window < micro_batch {
            return Err(AdaptError::new(ErrorKind::WindowUnderflow {
                have: stream_cfg.window,
                need: micro_batch,
            }));
        }
        let mut stream_cfg = stream_cfg;
        stream_cfg.micro_batch = micro_batch;
        stream_cfg.warmup = stream_cfg.warmup.clamp(1, stream_cfg.window);
        stream_cfg.live_window = stream_cfg.live_window.clamp(1, stream_cfg.window);
        stream_cfg.check_every = stream_cfg.check_every.max(1);
        let dims = calib.qs.len();
        let last_good = model.checkpoint();
        Ok(StreamAdapter {
            model,
            calib,
            cfg,
            live_unc: RollingStats::new(stream_cfg.live_window),
            stream_cfg,
            policy,
            detector: DriftDetector::new(drift_cfg),
            window: VecDeque::new(),
            kdes: Vec::new(),
            live: VecDeque::new(),
            live_kdes: Vec::new(),
            dims,
            input_width: None,
            samples_seen: 0,
            last_check: 0,
            pending_uncertain: 0,
            micro_count: 0,
            last_good,
            phase: StreamPhase::Warmup,
            report: StreamReport::default(),
        })
    }

    /// The engine's lifecycle phase.
    pub fn phase(&self) -> StreamPhase {
        self.phase
    }

    /// Accumulated counters.
    pub fn report(&self) -> &StreamReport {
        &self.report
    }

    /// Samples currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Samples accepted over the engine's lifetime.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Whether the density grids have been frozen (warmup complete).
    pub fn grids_frozen(&self) -> bool {
        !self.kdes.is_empty()
    }

    /// Deterministic (eval-mode) predictions of the current model.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        self.model.predict(x)
    }

    /// The adapted model, consuming the engine.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Drives `source` to exhaustion through [`StreamAdapter::push`].
    pub fn run<S: StreamSource + ?Sized>(
        &mut self,
        source: &mut S,
        loss: &dyn Loss,
    ) -> StreamReport {
        while let Some(chunk) = source.next_chunk() {
            self.push(&chunk, loss);
        }
        self.report.clone()
    }

    /// Ingests one chunk of target rows: validates, MC-predicts (fused
    /// dropout passes), classifies, slides the window and both incremental
    /// densities, then runs whatever the new samples triggered — warmup
    /// adaptation, micro-batch fine-tunes, a drift check, guarded
    /// re-adaptation. Never panics on degenerate input; failures surface as
    /// typed errors in the returned tick.
    pub fn push(&mut self, chunk: &Tensor, loss: &dyn Loss) -> StreamTick {
        let mut tick = StreamTick::default();
        if chunk.rows() == 0 {
            return tick;
        }

        // Mid-stream chaos: a sensor dropout burst corrupts the chunk
        // *before* validation — which is the point: ingest validation must
        // reject the burst, not let it poison the window.
        let corrupted = faultinject::take(Fault::StreamNanBurst)
            .map(|seed| faultinject::nan_burst(chunk, seed));
        let chunk = corrupted.as_ref().unwrap_or(chunk);

        // Mid-stream chaos: an upstream outage drains the buffer.
        if faultinject::take(Fault::WindowStarvation).is_some() {
            self.starve_window();
        }

        let width = *self.input_width.get_or_insert(chunk.cols());
        if chunk.cols() != width {
            tick.rejected += chunk.rows();
            self.note_rejected(chunk.rows());
            return tick;
        }

        // Validate rows; only finite rows reach the model.
        let valid_rows: Vec<usize> = (0..chunk.rows())
            .filter(|&r| chunk.row(r).iter().all(|v| v.is_finite()))
            .collect();
        let dropped = chunk.rows() - valid_rows.len();
        if dropped > 0 {
            tick.rejected += dropped;
            self.note_rejected(dropped);
        }
        if valid_rows.is_empty() {
            return tick;
        }
        let batch = chunk.select_rows(&valid_rows);
        let mc = McDropout::new(self.cfg.mc_samples)
            .relative(self.cfg.relative_uncertainty)
            .predict(&mut self.model, &batch);

        for r in 0..batch.rows() {
            self.ingest_row(&batch, &mc, r);
            tick.ingested += 1;
        }
        self.report.ingested += tick.ingested;
        tasfar_obs::metrics::counter("stream.ingested").add(tick.ingested as u64);

        // Warmup boundary: freeze the grids and run the initial guarded
        // adaptation over the window.
        if !self.grids_frozen() && self.samples_seen >= self.stream_cfg.warmup {
            self.freeze_grids();
            if self.grids_frozen() {
                match self.readapt(loss, "warmup") {
                    Ok(outcome) => tick.readapt = Some(outcome),
                    Err(err) => tick.error = Some(err),
                }
            }
        }

        // Micro-batch fine-tunes for the uncertain arrivals.
        while self.grids_frozen() && self.pending_uncertain >= self.stream_cfg.micro_batch {
            self.pending_uncertain = 0;
            match self.micro_finetune(loss) {
                Ok(()) => tick.micro_batches += 1,
                Err(err) => {
                    tick.error = Some(err);
                    break;
                }
            }
        }

        // Drift check on the configured cadence.
        if self.detector.has_reference()
            && self.samples_seen / self.stream_cfg.check_every > self.last_check
        {
            self.last_check = self.samples_seen / self.stream_cfg.check_every;
            let obs = if faultinject::take(Fault::DriftFlap).is_some() {
                self.detector.chaos_trip()
            } else {
                let live_mass: Vec<Vec<f64>> = self
                    .live_kdes
                    .iter()
                    .map(IncrementalKde::normalized_masses)
                    .collect();
                self.detector.observe(self.live_unc.median(), &live_mass)
            };
            tick.drift = Some(obs.clone());
            if obs.tripped {
                self.report.trips += 1;
                self.report.trip_samples.push(self.samples_seen);
                match self.readapt(loss, "drift_trip") {
                    Ok(outcome) => tick.readapt = Some(outcome),
                    Err(err) => tick.error = Some(err),
                }
            }
        }
        tick
    }

    /// Re-adapts over the entire current window through the guarded
    /// snapshot/rollback path, degrading to the last good checkpoint when
    /// every attempt fails. Public so deployments can force a re-adaptation
    /// (e.g. on an external schedule); the drift detector calls it on trip.
    ///
    /// # Errors
    /// [`ErrorKind::WindowUnderflow`] when the window is empty — there is
    /// nothing to adapt on (all samples evicted or none ingested yet).
    pub fn readapt(
        &mut self,
        loss: &dyn Loss,
        reason: &'static str,
    ) -> Result<StreamOutcome, AdaptError> {
        tasfar_obs::metrics::counter("drift.readapt").incr();
        let mut span = tasfar_obs::timed_span("readapt");
        span.field("reason", reason);
        span.field("window", self.window.len());
        if self.window.is_empty() {
            let err = AdaptError::new(ErrorKind::WindowUnderflow { have: 0, need: 1 });
            span.field("error", err.label());
            return Err(err);
        }

        let rows: Vec<Vec<f64>> = self.window.iter().map(|e| e.x.clone()).collect();
        let target_x = Tensor::from_rows(&rows);

        // Mid-stream chaos: the re-adaptation fine-tune explodes on *every*
        // retry (unlike the one-shot batch LossExplosion), forcing the
        // retry budget to exhaust and the degrade path to run.
        let exploding;
        let loss: &dyn Loss = if faultinject::take(Fault::ReadaptLossExplosion).is_some() {
            exploding = faultinject::ExplodingLoss::new();
            &exploding
        } else {
            loss
        };

        let started = std::time::Instant::now();
        let guarded = adapt_guarded(
            &mut self.model,
            &self.calib,
            &target_x,
            loss,
            &self.cfg,
            &self.policy,
        );
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let outcome = match &guarded {
            GuardedOutcome::Adapted(_) => {
                self.last_good = self.model.checkpoint();
                StreamOutcome::Adapted
            }
            GuardedOutcome::Recovered { .. } => {
                self.last_good = self.model.checkpoint();
                StreamOutcome::Recovered
            }
            GuardedOutcome::FellBackToSource { .. } => {
                // The guard already restored the pre-call weights; go one
                // step further and restore the last *good* state — recent
                // micro-batch updates may be exactly what drifted bad.
                self.model.restore(&self.last_good);
                tasfar_obs::metrics::counter("drift.rollbacks").incr();
                self.report.degraded += 1;
                StreamOutcome::DegradedLastGood
            }
        };

        // Re-baseline the window against the (possibly new) model: cached
        // predictions, classifications, densities, and the drift reference
        // all refresh together.
        self.refresh_window();

        span.field("outcome", outcome.label());
        span.field("retries", guarded.retries());
        span.field("wall_ms", wall_ms as u64);
        self.report.readapts += 1;
        self.report.readapt_walls_ms.push(wall_ms);
        self.report.last_outcome = Some(outcome);
        self.phase = StreamPhase::Steady(outcome);
        Ok(outcome)
    }

    // -- internals ---------------------------------------------------------

    fn note_rejected(&mut self, n: usize) {
        self.report.rejected += n;
        tasfar_obs::metrics::counter("stream.rejected").add(n as u64);
    }

    /// Classifies one predicted row into a [`WindowEntry`].
    fn classify(
        &self,
        pred: Vec<f64>,
        std: Vec<f64>,
        uncertainty: f64,
        x: Vec<f64>,
    ) -> WindowEntry {
        let sigma: Vec<f64> = (0..self.dims)
            .map(|d| self.calib.qs[d].sigma(std[d]))
            .collect();
        let valid_sigma = sigma.iter().all(|s| s.is_finite() && *s > 0.0);
        let confident = valid_sigma
            && uncertainty.is_finite()
            && self.calib.classifier.is_confident(uncertainty);
        WindowEntry {
            x,
            pred,
            std,
            sigma,
            uncertainty,
            confident,
            valid_sigma,
        }
    }

    fn ingest_row(&mut self, batch: &Tensor, mc: &McPrediction, r: usize) {
        let entry = self.classify(
            mc.point.row(r).to_vec(),
            mc.std.row(r).to_vec(),
            mc.uncertainty[r],
            batch.row(r).to_vec(),
        );

        // Window slide with incremental density add/evict.
        if self.window.len() == self.stream_cfg.window {
            if let Some(old) = self.window.pop_front() {
                if old.confident {
                    for (d, kde) in self.kdes.iter_mut().enumerate() {
                        kde.evict(old.pred[d], old.sigma[d]);
                    }
                }
            }
        }
        if entry.confident {
            for (d, kde) in self.kdes.iter_mut().enumerate() {
                kde.add(entry.pred[d], entry.sigma[d]);
            }
        } else if entry.valid_sigma {
            self.pending_uncertain += 1;
        }

        // Live sub-window slide.
        if self.live.len() == self.stream_cfg.live_window {
            if let Some(old) = self.live.pop_front() {
                if old.confident {
                    for (d, kde) in self.live_kdes.iter_mut().enumerate() {
                        kde.evict(old.pred[d], old.sigma[d]);
                    }
                }
            }
        }
        if entry.confident {
            for (d, kde) in self.live_kdes.iter_mut().enumerate() {
                kde.add(entry.pred[d], entry.sigma[d]);
            }
        }
        self.live.push_back(LiveEntry {
            pred: entry.pred.clone(),
            sigma: entry.sigma.clone(),
            confident: entry.confident,
        });
        self.live_unc.push(entry.uncertainty);

        self.window.push_back(entry);
        self.samples_seen += 1;
    }

    /// The `Fault::WindowStarvation` payload: the upstream buffer drains.
    fn starve_window(&mut self) {
        self.window.clear();
        self.live.clear();
        self.live_unc.clear();
        self.pending_uncertain = 0;
        for kde in self.kdes.iter_mut().chain(self.live_kdes.iter_mut()) {
            *kde = IncrementalKde::new(kde.spec().clone(), self.cfg.error_model);
        }
    }

    /// Freezes one grid per label dimension around the warmup window's
    /// predictions, widened by `grid_headroom` so moderate drift stays
    /// on-grid. No-op (grids stay unfrozen) when the window is empty or the
    /// cell width is degenerate — the next push retries.
    fn freeze_grids(&mut self) {
        if self.window.is_empty() || !self.cfg.grid_cell.is_finite() || self.cfg.grid_cell <= 0.0 {
            return;
        }
        let cell = self.cfg.grid_cell;
        let headroom = if self.stream_cfg.grid_headroom.is_finite() {
            self.stream_cfg.grid_headroom.max(1.0)
        } else {
            1.0
        };
        let mut kdes = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for e in &self.window {
                let s = if e.valid_sigma { e.sigma[d] } else { 0.0 };
                lo = lo.min(e.pred[d] - 4.0 * s);
                hi = hi.max(e.pred[d] + 4.0 * s);
            }
            if !lo.is_finite() || !hi.is_finite() {
                return;
            }
            let center = 0.5 * (lo + hi);
            let halfspan = (0.5 * (hi - lo) * headroom).max(cell);
            let spec = GridSpec::from_range(center - halfspan, center + halfspan, cell);
            kdes.push(IncrementalKde::new(spec, self.cfg.error_model));
        }
        self.kdes = kdes;
        self.rebuild_densities();
    }

    /// Rebuilds both incremental densities from the current window/live
    /// entries on the frozen grids (used after freeze and refresh; steady
    /// ingest uses the incremental add/evict path).
    fn rebuild_densities(&mut self) {
        for kde in self.kdes.iter_mut().chain(self.live_kdes.iter_mut()) {
            *kde = IncrementalKde::new(kde.spec().clone(), self.cfg.error_model);
        }
        if self.live_kdes.is_empty() && !self.kdes.is_empty() {
            self.live_kdes = self
                .kdes
                .iter()
                .map(|k| IncrementalKde::new(k.spec().clone(), self.cfg.error_model))
                .collect();
        }
        for e in self.window.iter().filter(|e| e.confident) {
            for (d, kde) in self.kdes.iter_mut().enumerate() {
                kde.add(e.pred[d], e.sigma[d]);
            }
        }
        for e in self.live.iter().filter(|e| e.confident) {
            for (d, kde) in self.live_kdes.iter_mut().enumerate() {
                kde.add(e.pred[d], e.sigma[d]);
            }
        }
    }

    /// Re-predicts and re-classifies every window entry against the current
    /// model, rebuilds both densities, and re-baselines the drift detector.
    fn refresh_window(&mut self) {
        if self.window.is_empty() {
            return;
        }
        let rows: Vec<Vec<f64>> = self.window.iter().map(|e| e.x.clone()).collect();
        let batch = Tensor::from_rows(&rows);
        let mc = McDropout::new(self.cfg.mc_samples)
            .relative(self.cfg.relative_uncertainty)
            .predict(&mut self.model, &batch);
        let mut refreshed = VecDeque::with_capacity(self.window.len());
        for (r, old) in self.window.iter().enumerate() {
            refreshed.push_back(self.classify(
                mc.point.row(r).to_vec(),
                mc.std.row(r).to_vec(),
                mc.uncertainty[r],
                old.x.clone(),
            ));
        }
        self.window = refreshed;

        // The live ring mirrors the window's most recent entries.
        let live_len = self.live.len().min(self.window.len());
        self.live = self
            .window
            .iter()
            .skip(self.window.len() - live_len)
            .map(|e| LiveEntry {
                pred: e.pred.clone(),
                sigma: e.sigma.clone(),
                confident: e.confident,
            })
            .collect();
        self.live_unc.clear();
        for e in self.window.iter().skip(self.window.len() - live_len) {
            self.live_unc.push(e.uncertainty);
        }
        self.rebuild_densities();

        if self.grids_frozen() {
            // Median, not mean: hard samples carry heavy-tailed uncertainty,
            // and the reference must match the live window's robust statistic.
            let mut unc: Vec<f64> = self.window.iter().map(|e| e.uncertainty).collect();
            unc.sort_by(f64::total_cmp);
            let central_unc = if unc.is_empty() {
                0.0
            } else if unc.len() % 2 == 1 {
                unc[unc.len() / 2]
            } else {
                0.5 * (unc[unc.len() / 2 - 1] + unc[unc.len() / 2])
            };
            let mass: Vec<Vec<f64>> = self
                .kdes
                .iter()
                .map(IncrementalKde::normalized_masses)
                .collect();
            self.detector.set_reference(central_unc, mass);
        }
    }

    /// One pseudo-label fine-tune micro-batch through the existing typed
    /// pipeline stages: the most recent uncertain window entries get
    /// pseudo-labels from the incremental density snapshot, joined by
    /// confident replay rows, and the fine-tune runs under a snapshot that
    /// is rolled back on any typed failure.
    fn micro_finetune(&mut self, loss: &dyn Loss) -> Result<(), AdaptError> {
        if self.window.is_empty() {
            return Err(AdaptError::new(ErrorKind::WindowUnderflow {
                have: 0,
                need: self.stream_cfg.micro_batch,
            }));
        }
        // Most recent uncertain/confident entries, chronological order.
        let mut uncertain_idx: Vec<usize> = self
            .window
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, e)| !e.confident && e.valid_sigma)
            .map(|(i, _)| i)
            .take(self.stream_cfg.micro_batch)
            .collect();
        uncertain_idx.reverse();
        let mut confident_idx: Vec<usize> = self
            .window
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, e)| e.confident)
            .map(|(i, _)| i)
            .take(self.stream_cfg.replay_confident.max(1))
            .collect();
        confident_idx.reverse();

        if uncertain_idx.is_empty() {
            return Err(AdaptError::new(ErrorKind::NoUncertainSamples));
        }
        let required = self.cfg.min_confident.max(1);
        if confident_idx.len() < required {
            return Err(AdaptError::new(ErrorKind::NoConfidentSamples {
                found: confident_idx.len(),
                required,
            }));
        }
        let maps: Vec<DensityMap1d> = self.kdes.iter().map(IncrementalKde::snapshot).collect();
        if maps
            .iter()
            .map(DensityMap1d::total_mass)
            .fold(f64::INFINITY, f64::min)
            <= 0.0
        {
            return Err(AdaptError::new(ErrorKind::ZeroDensityMass));
        }

        // Assemble the micro-batch: uncertain rows first, then replay.
        let selection: Vec<usize> = uncertain_idx
            .iter()
            .chain(confident_idx.iter())
            .copied()
            .collect();
        let n_unc = uncertain_idx.len();
        let n_rows = selection.len();
        let entry = |i: usize| &self.window[selection[i]];
        let target_x =
            Tensor::from_rows(&(0..n_rows).map(|i| entry(i).x.clone()).collect::<Vec<_>>());
        let point = Tensor::from_rows(
            &(0..n_rows)
                .map(|i| entry(i).pred.clone())
                .collect::<Vec<_>>(),
        );
        let std = Tensor::from_rows(
            &(0..n_rows)
                .map(|i| entry(i).std.clone())
                .collect::<Vec<_>>(),
        );
        let mc = McPrediction {
            mc_mean: point.clone(),
            uncertainty: (0..n_rows).map(|i| entry(i).uncertainty).collect(),
            point,
            std,
        };
        let split = ConfidenceSplit {
            uncertain: (0..n_unc).collect(),
            confident: (n_unc..n_rows).collect(),
        };
        let unc_pred = Tensor::from_rows(
            &(0..n_unc)
                .map(|i| entry(i).pred.clone())
                .collect::<Vec<_>>(),
        );
        let unc_sigma = Tensor::from_rows(
            &(0..n_unc)
                .map(|i| entry(i).sigma.clone())
                .collect::<Vec<_>>(),
        );
        let density = DensityArtifacts {
            maps: BuiltMaps::PerDim(maps),
            unc_pred,
            unc_sigma,
            tau: self.calib.classifier.tau,
        };

        self.micro_count += 1;
        let micro_cfg = TasfarConfig {
            epochs: self.stream_cfg.micro_epochs.max(1),
            early_stop: None,
            batch_size: self.cfg.batch_size.min(n_rows).max(1),
            replay_confident: true,
            seed: self.cfg.seed.wrapping_add(self.micro_count),
            ..self.cfg.clone()
        };

        let mut trace = PipelineTrace::default();
        let pseudo = pseudo_label_stage(&mc, &split, &density, &micro_cfg, &mut trace)?;
        let snapshot = self.model.checkpoint();
        match finetune_stage(
            &mut self.model,
            &target_x,
            &mc,
            &split,
            &pseudo,
            loss,
            &micro_cfg,
            &mut trace,
        ) {
            Ok(_) => {
                self.report.micro_batches += 1;
                tasfar_obs::metrics::counter("stream.micro_batches").incr();
                Ok(())
            }
            Err(err) => {
                // Do-no-harm at micro-batch granularity: restore the
                // pre-micro-batch weights and keep streaming.
                self.model.restore(&snapshot);
                self.report.micro_rollbacks += 1;
                tasfar_obs::metrics::counter("stream.micro_rollbacks").incr();
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_stream_chunks_and_rewinds() {
        let data = Tensor::from_fn(10, 2, |r, c| (r * 2 + c) as f64);
        let mut s = ReplayStream::new(data, 4);
        let a = s.next_chunk().unwrap();
        assert_eq!(a.shape(), (4, 2));
        assert_eq!(s.next_chunk().unwrap().shape(), (4, 2));
        let tail = s.next_chunk().unwrap();
        assert_eq!(tail.shape(), (2, 2), "short final chunk");
        assert!(s.next_chunk().is_none());
        s.rewind();
        assert_eq!(s.remaining(), 10);
        assert_eq!(s.next_chunk().unwrap().as_slice(), a.as_slice());
    }

    #[test]
    fn zero_chunk_size_is_bumped() {
        let mut s = ReplayStream::new(Tensor::zeros(3, 1), 0);
        assert_eq!(s.next_chunk().unwrap().rows(), 1);
    }

    #[test]
    fn incremental_kde_add_then_evict_returns_to_empty() {
        let spec = GridSpec::from_range(-1.0, 1.0, 0.1);
        let mut kde = IncrementalKde::new(spec, ErrorModel::Gaussian);
        assert!(!kde.has_mass());
        kde.add(0.2, 0.05);
        kde.add(-0.3, 0.1);
        assert_eq!(kde.samples(), 2);
        assert!(kde.has_mass());
        kde.evict(0.2, 0.05);
        kde.evict(-0.3, 0.1);
        assert_eq!(kde.samples(), 0);
        assert!(!kde.has_mass(), "exact integer ticks cancel to zero");
    }

    #[test]
    fn incremental_kde_skips_unusable_samples_symmetrically() {
        let spec = GridSpec::from_range(-1.0, 1.0, 0.1);
        let mut kde = IncrementalKde::new(spec, ErrorModel::Gaussian);
        kde.add(f64::NAN, 0.1);
        kde.add(0.0, -1.0);
        kde.add(0.0, f64::INFINITY);
        assert_eq!(kde.samples(), 0, "unusable samples are not counted");
        kde.evict(f64::NAN, 0.1);
        assert_eq!(kde.samples(), 0);
    }

    #[test]
    fn incremental_kde_snapshot_tracks_batch_estimator_closely() {
        // The quantised snapshot is not bit-equal to the f64 batch
        // estimator (that is the point of the ticks), but it must agree to
        // far better than any consumer resolves.
        let spec = GridSpec::from_range(-1.5, 1.5, 0.05);
        let preds = [0.1, 0.2, -0.4, 0.8, 0.0, 0.33];
        let sigmas = [0.05, 0.1, 0.2, 0.07, 0.15, 0.09];
        let mut kde = IncrementalKde::new(spec.clone(), ErrorModel::Gaussian);
        for (&p, &s) in preds.iter().zip(&sigmas) {
            kde.add(p, s);
        }
        let batch = DensityMap1d::estimate(&preds, &sigmas, spec, ErrorModel::Gaussian);
        let snap = kde.snapshot();
        for i in 0..batch.spec.bins {
            assert!(
                (snap.mass(i) - batch.mass(i)).abs() < 1e-9,
                "bin {i}: {} vs {}",
                snap.mass(i),
                batch.mass(i)
            );
        }
    }

    #[test]
    fn normalized_masses_sum_to_one_or_are_empty() {
        let spec = GridSpec::from_range(-1.0, 1.0, 0.1);
        let mut kde = IncrementalKde::new(spec, ErrorModel::Gaussian);
        assert!(kde.normalized_masses().is_empty());
        kde.add(0.0, 0.1);
        kde.add(0.5, 0.2);
        let mass = kde.normalized_masses();
        let total: f64 = mass.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "normalised total {total}");
    }

    #[test]
    fn outcome_and_phase_labels_are_stable() {
        assert_eq!(StreamOutcome::Adapted.label(), "adapted");
        assert_eq!(StreamOutcome::Recovered.label(), "recovered");
        assert_eq!(
            StreamOutcome::DegradedLastGood.label(),
            "degraded-to-last-good"
        );
        assert_eq!(StreamPhase::Warmup.label(), "warmup");
        assert_eq!(
            StreamPhase::Steady(StreamOutcome::Recovered).label(),
            "recovered"
        );
    }
}
