//! The confidence classifier (paper Algorithm 1).
//!
//! The threshold τ is *not* tuned on the target: it is the η-quantile of the
//! source-data uncertainties, fixed "after the source-model training"
//! (Sec. III-B) and shipped with the model. On the target, samples whose
//! uncertainty stays below τ are *confident* (their predictions feed the
//! label-density estimator); the rest are *uncertain* (they receive
//! pseudo-labels).

use tasfar_nn::json::{FromJson, Json, JsonError, ToJson};

/// A calibrated uncertainty threshold.
#[derive(Debug, Clone)]
pub struct ConfidenceClassifier {
    /// The uncertainty threshold τ.
    pub tau: f64,
    /// The source-data proportion η used to pick τ (paper default 0.9).
    pub eta: f64,
}

impl ToJson for ConfidenceClassifier {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("tau", Json::Num(self.tau)),
            ("eta", Json::Num(self.eta)),
        ])
    }
}

impl FromJson for ConfidenceClassifier {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(ConfidenceClassifier {
            tau: v.field("tau")?.as_f64()?,
            eta: v.field("eta")?.as_f64()?,
        })
    }
}

/// The outcome of splitting a target batch.
#[derive(Debug, Clone)]
pub struct ConfidenceSplit {
    /// Indices with `u ≤ τ` (confident).
    pub confident: Vec<usize>,
    /// Indices with `u > τ` (uncertain).
    pub uncertain: Vec<usize>,
}

impl ConfidenceSplit {
    /// Share of the batch classified uncertain.
    pub fn uncertain_ratio(&self) -> f64 {
        let total = self.confident.len() + self.uncertain.len();
        if total == 0 {
            0.0
        } else {
            self.uncertain.len() as f64 / total as f64
        }
    }
}

impl ConfidenceClassifier {
    /// Calibrates τ as the η-quantile of the source uncertainties.
    ///
    /// # Panics
    /// Panics if `source_uncertainties` is empty, contains non-finite
    /// values, or `eta` is outside `(0, 1)`.
    pub fn calibrate(source_uncertainties: &[f64], eta: f64) -> Self {
        assert!(
            !source_uncertainties.is_empty(),
            "ConfidenceClassifier: no source uncertainties"
        );
        assert!(
            (0.0..1.0).contains(&eta) && eta > 0.0,
            "ConfidenceClassifier: eta ({eta}) must be in (0, 1)"
        );
        assert!(
            source_uncertainties.iter().all(|u| u.is_finite()),
            "ConfidenceClassifier: non-finite uncertainty"
        );
        let mut sorted = source_uncertainties.to_vec();
        sorted.sort_by(f64::total_cmp);
        ConfidenceClassifier {
            tau: quantile_sorted(&sorted, eta),
            eta,
        }
    }

    /// Builds a classifier directly from a known τ (used in ablations).
    pub fn from_tau(tau: f64, eta: f64) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "ConfidenceClassifier: bad tau {tau}"
        );
        ConfidenceClassifier { tau, eta }
    }

    /// A classifier with τ multiplied by `factor` — used for scenario-level
    /// τ rescaling (see `TasfarConfig::scenario_tau_rescale`).
    ///
    /// # Panics
    /// Panics unless `factor > 0`.
    pub fn rescaled(&self, factor: f64) -> ConfidenceClassifier {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "rescaled: bad factor {factor}"
        );
        ConfidenceClassifier {
            tau: self.tau * factor,
            eta: self.eta,
        }
    }

    /// Splits a batch by uncertainty (Algorithm 1's loop).
    pub fn split(&self, uncertainties: &[f64]) -> ConfidenceSplit {
        let mut confident = Vec::new();
        let mut uncertain = Vec::new();
        for (i, &u) in uncertainties.iter().enumerate() {
            if u > self.tau {
                uncertain.push(i);
            } else {
                confident.push(i);
            }
        }
        ConfidenceSplit {
            confident,
            uncertain,
        }
    }

    /// True when a single uncertainty counts as confident.
    pub fn is_confident(&self, u: f64) -> bool {
        u <= self.tau
    }
}

/// Linear-interpolated quantile of an ascending-sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_is_the_eta_quantile() {
        let u: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let c = ConfidenceClassifier::calibrate(&u, 0.9);
        // 90th percentile of 1..=100 with linear interpolation: 90.1.
        assert!((c.tau - 90.1).abs() < 1e-9, "tau {}", c.tau);
    }

    #[test]
    fn roughly_eta_of_source_is_confident() {
        let u: Vec<f64> = (0..1000).map(|i| (i as f64).sin().abs() + 0.01).collect();
        let c = ConfidenceClassifier::calibrate(&u, 0.9);
        let split = c.split(&u);
        let conf_ratio = split.confident.len() as f64 / 1000.0;
        assert!(
            (conf_ratio - 0.9).abs() < 0.02,
            "confident ratio {conf_ratio}"
        );
    }

    #[test]
    fn split_partitions_all_indices() {
        let c = ConfidenceClassifier::from_tau(0.5, 0.9);
        let u = [0.1, 0.9, 0.5, 0.51, 0.49];
        let s = c.split(&u);
        assert_eq!(s.confident, vec![0, 2, 4]);
        assert_eq!(s.uncertain, vec![1, 3]);
        assert!((s.uncertain_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn boundary_is_confident() {
        let c = ConfidenceClassifier::from_tau(1.0, 0.9);
        assert!(c.is_confident(1.0));
        assert!(!c.is_confident(1.0 + 1e-12));
    }

    #[test]
    fn shifted_target_has_more_uncertain_than_eta() {
        // The property Fig. 16 reports: on target data with a domain gap the
        // uncertain share exceeds 1 − η.
        let source: Vec<f64> = (0..500)
            .map(|i| 0.5 + 0.3 * ((i as f64) * 0.7).sin())
            .collect();
        let target: Vec<f64> = source.iter().map(|u| u * 1.5).collect();
        let c = ConfidenceClassifier::calibrate(&source, 0.9);
        let s = c.split(&target);
        assert!(s.uncertain_ratio() > 0.1);
    }

    #[test]
    fn empty_split_ratio_is_zero() {
        let c = ConfidenceClassifier::from_tau(1.0, 0.9);
        assert_eq!(c.split(&[]).uncertain_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no source uncertainties")]
    fn empty_calibration_panics() {
        ConfidenceClassifier::calibrate(&[], 0.9);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn bad_eta_panics() {
        ConfidenceClassifier::calibrate(&[1.0], 1.5);
    }
}
