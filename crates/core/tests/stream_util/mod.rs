//! Shared builder for the streaming suites (`stream_window.rs`,
//! `chaos_stream.rs`): a factory-calibrated sensor model plus the
//! deployment stream from `tasfar_data::sensor`.

#![allow(dead_code)]

use tasfar_core::prelude::*;
use tasfar_data::sensor::{self, SensorConfig, SensorWorld};
use tasfar_nn::prelude::*;

pub struct StreamToy {
    pub model: Sequential,
    pub calib: SourceCalibration,
    pub cfg: TasfarConfig,
    pub world: SensorWorld,
}

/// A trained, calibrated sensor deployment with a short stream. The stream
/// geometry is kept small so the suites stay fast; `shift_at` still leaves
/// a steady regime on both sides of the jump.
pub fn stream_toy(seed: u64, n_stream: usize, shift_at: usize) -> StreamToy {
    let world = sensor::generate(&SensorConfig {
        n_source: 500,
        n_stream,
        shift_at,
        glitch_prob: 0.3,
        seed,
        ..SensorConfig::default()
    });
    let mut rng = Rng::new(seed.wrapping_add(1));
    let mut model = Sequential::new()
        .add(Dense::new(sensor::FEATURES, 24, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(24, 1, Init::XavierUniform, &mut rng));
    let mut opt = Adam::new(5e-3);
    let _ = fit(
        &mut model,
        &mut opt,
        &Mse,
        &world.source.x,
        &world.source.y,
        None,
        &TrainConfig {
            epochs: 80,
            batch_size: 32,
            seed,
            ..TrainConfig::default()
        },
    );
    let cfg = TasfarConfig {
        grid_cell: 0.05,
        epochs: 20,
        learning_rate: 1e-3,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib =
        calibrate_on_source(&mut model, &world.source, &cfg).expect("the sensor source calibrates");
    StreamToy {
        model,
        calib,
        cfg,
        world,
    }
}

/// A fast streaming geometry matched to the toy's stream length.
pub fn toy_stream_cfg() -> StreamConfig {
    StreamConfig {
        window: 96,
        warmup: 64,
        micro_batch: 16,
        micro_epochs: 4,
        replay_confident: 16,
        live_window: 32,
        check_every: 8,
        grid_headroom: 3.0,
    }
}

/// FNV-1a over the f64 bit patterns — bit-exact fingerprint of predictions
/// and density masses (same scheme as the golden-adapt suite).
pub fn fnv1a_bits(values: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}
