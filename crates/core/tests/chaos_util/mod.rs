//! Shared toy-task builder for the chaos suites (`chaos.rs`,
//! `chaos_env.rs`). Same scenario shape as the `adapt` unit tests: the
//! source labels are uniform, the target labels cluster at 0.6, and a share
//! of "hard" inputs carries the uncertainty signal.

use tasfar_core::prelude::*;
use tasfar_data::Dataset;
use tasfar_nn::prelude::*;

pub struct Toy {
    pub model: Sequential,
    pub calib: SourceCalibration,
    pub cfg: TasfarConfig,
    pub target_x: Tensor,
}

fn scenario(rng: &mut Rng, n: usize, label: impl Fn(&mut Rng) -> f64, hard_share: f64) -> Dataset {
    let mut x = Tensor::zeros(n, 2);
    let mut y = Tensor::zeros(n, 1);
    for i in 0..n {
        let v = label(rng);
        let hard = rng.bernoulli(hard_share);
        let noise = if hard {
            rng.gaussian(0.0, 0.8)
        } else {
            rng.gaussian(0.0, 0.03)
        };
        x.set(i, 0, v + noise);
        x.set(
            i,
            1,
            if hard {
                rng.uniform(3.0, 5.0)
            } else {
                rng.uniform(0.0, 0.5)
            },
        );
        y.set(i, 0, v);
    }
    Dataset::new(x, y)
}

/// A trained, calibrated toy deployment ready for guarded adaptation.
pub fn calibrated_toy(seed: u64) -> Toy {
    let mut rng = Rng::new(seed);
    let source = scenario(&mut rng, 400, |r| r.uniform(-1.0, 1.0), 0.05);
    let mut model = Sequential::new()
        .add(Dense::new(2, 24, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(24, 1, Init::XavierUniform, &mut rng));
    let mut opt = Adam::new(5e-3);
    let _ = fit(
        &mut model,
        &mut opt,
        &Mse,
        &source.x,
        &source.y,
        None,
        &TrainConfig {
            epochs: 80,
            batch_size: 32,
            seed,
            ..TrainConfig::default()
        },
    );
    let cfg = TasfarConfig {
        grid_cell: 0.05,
        epochs: 30,
        learning_rate: 1e-3,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("the toy source calibrates");
    let target_x = scenario(&mut rng, 200, |r| r.gaussian(0.6, 0.05), 0.4).x;
    Toy {
        model,
        calib,
        cfg,
        target_x,
    }
}

/// FNV-1a over the f64 bit patterns — bit-exact fingerprint of a
/// prediction tensor (same scheme as the golden-adapt suite).
pub fn fnv1a_bits(values: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}
