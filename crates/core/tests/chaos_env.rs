//! The `TASFAR_CHAOS` environment hook, in its own test binary: the env
//! variable is read once per process, on the first `adapt_guarded` call, so
//! the test must own that first call.

mod chaos_util;

use chaos_util::{calibrated_toy, fnv1a_bits};
use tasfar_core::faultinject;
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

#[test]
fn env_armed_fault_hits_the_first_guarded_run_only() {
    std::env::set_var("TASFAR_CHAOS", "nan_batch:5");
    let mut toy = calibrated_toy(41);
    let reference_hash = fnv1a_bits(toy.model.clone().predict(&toy.target_x).as_slice());

    // First guarded run: reads the env, arms the fault, gets sabotaged.
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &RecoveryPolicy::default(),
    );
    match &outcome {
        GuardedOutcome::FellBackToSource { error, .. } => {
            assert_eq!(error.label(), "non_finite_input");
        }
        other => panic!("expected fallback, got {}", other.label()),
    }
    assert_eq!(
        tasfar_obs::metrics::counter("chaos.injected.nan_batch").get(),
        1
    );
    assert_eq!(faultinject::armed(), None, "env arming is one-shot too");
    assert_eq!(
        fnv1a_bits(toy.model.clone().predict(&toy.target_x).as_slice()),
        reference_hash
    );

    // Second run in the same process: the env is not re-read, the pipeline
    // is healthy again.
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &RecoveryPolicy::default(),
    );
    assert_eq!(outcome.label(), "adapted");
    assert_eq!(
        tasfar_obs::metrics::counter("chaos.injected.nan_batch").get(),
        1,
        "no second injection"
    );
}
