//! Chaos suite: every injectable fault class is caught by the validation
//! layer, classified into the typed error taxonomy, and either recovered by
//! the policy-driven retry or degraded to the source checkpoint — with the
//! rollback provably bit-identical.
//!
//! Faults are armed programmatically here; `chaos_env.rs` covers the
//! `TASFAR_CHAOS` environment path in its own process (the env hook is
//! first-call-wins per process).

mod chaos_util;

use std::sync::Mutex;

use chaos_util::{calibrated_toy, fnv1a_bits};
use tasfar_core::faultinject::{self, Fault};
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

/// The armed-fault slot is process-global; the chaos tests must not
/// interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn injected_count(fault: Fault) -> u64 {
    tasfar_obs::metrics::counter(&format!("chaos.injected.{}", fault.label())).get()
}

#[test]
fn nan_batch_fault_is_fatal_and_rolls_back_bit_identically() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let mut toy = calibrated_toy(31);
    let reference_hash = fnv1a_bits(toy.model.clone().predict(&toy.target_x).as_slice());
    let injected_before = injected_count(Fault::NanBatch);

    faultinject::arm_seeded(Fault::NanBatch, 7);
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &RecoveryPolicy::default(),
    );
    match &outcome {
        GuardedOutcome::FellBackToSource { error, retries } => {
            assert_eq!(error.label(), "non_finite_input");
            assert!(!error.recoverable());
            assert_eq!(*retries, 0, "a fatal fault must not burn retries");
        }
        other => panic!("expected fallback, got {}", other.label()),
    }
    assert_eq!(injected_count(Fault::NanBatch), injected_before + 1);
    assert_eq!(faultinject::armed(), None, "the fault is one-shot");
    // Do-no-harm, pinned by hash: the rolled-back model's predictions are
    // bit-identical to the pre-adaptation model's.
    assert_eq!(
        fnv1a_bits(toy.model.predict(&toy.target_x).as_slice()),
        reference_hash,
        "rollback must restore the source checkpoint bit-identically"
    );
}

#[test]
fn empty_confident_split_fault_recovers_in_one_retry() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let mut toy = calibrated_toy(32);
    let injected_before = injected_count(Fault::EmptyConfidentSplit);

    faultinject::arm(Fault::EmptyConfidentSplit);
    // A near-neutral τ adjustment: the fault is one-shot, so the retry's
    // split is healthy as long as the widening doesn't overshoot it into
    // the all-confident regime.
    let policy = RecoveryPolicy {
        tau_widen: 1.01,
        ..RecoveryPolicy::default()
    };
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &policy,
    );
    match &outcome {
        GuardedOutcome::Recovered {
            retries, errors, ..
        } => {
            assert_eq!(*retries, 1, "the fault is one-shot, the retry is clean");
            assert_eq!(errors.len(), 1);
            assert_eq!(errors[0].label(), "no_confident_samples");
            assert!(errors[0].recoverable());
        }
        other => panic!("expected recovery, got {}", other.label()),
    }
    assert_eq!(
        injected_count(Fault::EmptyConfidentSplit),
        injected_before + 1
    );
}

#[test]
fn zero_density_mass_fault_recovers_in_one_retry() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let mut toy = calibrated_toy(33);
    let injected_before = injected_count(Fault::ZeroDensityMass);

    faultinject::arm(Fault::ZeroDensityMass);
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &RecoveryPolicy::default(),
    );
    match &outcome {
        GuardedOutcome::Recovered {
            retries, errors, ..
        } => {
            assert_eq!(*retries, 1);
            assert_eq!(errors[0].label(), "zero_density_mass");
            assert!(errors[0].recoverable());
        }
        other => panic!("expected recovery, got {}", other.label()),
    }
    assert_eq!(injected_count(Fault::ZeroDensityMass), injected_before + 1);
}

#[test]
fn loss_explosion_fault_recovers_with_backed_off_learning_rate() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let mut toy = calibrated_toy(34);
    let injected_before = injected_count(Fault::LossExplosion);

    faultinject::arm(Fault::LossExplosion);
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &RecoveryPolicy::default(),
    );
    match &outcome {
        GuardedOutcome::Recovered {
            retries, errors, ..
        } => {
            assert_eq!(*retries, 1);
            assert_eq!(errors[0].label(), "train");
            assert!(errors[0].recoverable());
        }
        other => panic!("expected recovery, got {}", other.label()),
    }
    assert_eq!(injected_count(Fault::LossExplosion), injected_before + 1);
}

#[test]
fn injection_and_rollback_are_visible_in_the_trace() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let mut toy = calibrated_toy(35);

    let sink = tasfar_obs::capture();
    faultinject::arm_seeded(Fault::NanBatch, 3);
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &RecoveryPolicy::default(),
    );
    tasfar_obs::disable();
    assert!(outcome.fell_back());

    let lines = sink.lines();
    let has = |needle: &str| lines.iter().any(|l| l.contains(needle));
    assert!(has("chaos.injected"), "the injection emits a trace event");
    assert!(has("nan_batch"), "the event names the fault");
    assert!(has("guard.rollback"), "the rollback emits a trace event");
    assert!(
        has("adapt_guarded"),
        "the guarded run has a span with its outcome"
    );
    assert!(has("fell_back"), "the span records the outcome label");
}

#[test]
fn every_fault_class_is_survivable_back_to_back() {
    // The acceptance sweep: all four fault classes in sequence against one
    // deployment, none panics, each resolves per policy, and the model ends
    // the gauntlet either adapted or bit-identical to the source.
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let toy = calibrated_toy(36);

    for (fault, expect) in [
        (Fault::NanBatch, "fell_back"),
        (Fault::EmptyConfidentSplit, "recovered"),
        (Fault::ZeroDensityMass, "recovered"),
        (Fault::LossExplosion, "recovered"),
    ] {
        let mut model = toy.model.clone();
        faultinject::arm(fault);
        let outcome = adapt_guarded(
            &mut model,
            &toy.calib,
            &toy.target_x,
            &Mse,
            &toy.cfg,
            &RecoveryPolicy::default(),
        );
        assert_eq!(
            outcome.label(),
            expect,
            "fault {} must resolve per policy",
            fault.label()
        );
        if outcome.fell_back() {
            assert_eq!(
                fnv1a_bits(model.predict(&toy.target_x).as_slice()),
                fnv1a_bits(toy.model.clone().predict(&toy.target_x).as_slice()),
            );
        }
        assert!(model.predict(&toy.target_x).all_finite());
    }
}
