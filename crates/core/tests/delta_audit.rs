//! Byte-counting-allocator proof that adapted checkpoints are delta-sized:
//! snapshotting an adapted model allocates O(rank·dim) bytes — the factor
//! payload plus small vector headers, nowhere near the full parameter set —
//! and restoring the snapshot copies in place without touching the heap at
//! all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tasfar_nn::adapter::{delta_footprint, enable_adapters, AdapterConfig};
use tasfar_nn::model::CheckpointRegressor;
use tasfar_nn::prelude::*;

/// Wraps the system allocator, summing the bytes acquired (`alloc` +
/// `realloc`) on this thread. Deallocations are free of charge: the audit
/// is about how much memory a snapshot *acquires*.
struct ByteCountingAlloc;

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for ByteCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: ByteCountingAlloc = ByteCountingAlloc;

fn bytes_allocated() -> u64 {
    BYTES.with(|c| c.get())
}

/// A model wide enough that the full parameter set dwarfs a rank-2 delta:
/// 3 dense layers of 64×64-class weights ≈ 12 480 scalars ≈ 100 KB, against
/// a delta of 3·(64·2 + 2·64) = 768 scalars ≈ 6 KB.
fn wide_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(64, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dense::new(64, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dense::new(64, 64, Init::XavierUniform, rng))
}

#[test]
fn delta_checkpoint_allocates_o_rank_dim_and_restore_is_allocation_free() {
    let mut rng = Rng::new(3);
    let mut model = wide_model(&mut rng);
    let full_param_bytes = (model.num_parameters() * std::mem::size_of::<f64>()) as u64;

    enable_adapters(&mut model, &AdapterConfig::rank(2), &mut rng);
    let (_, delta_bytes) = delta_footprint(&mut model);
    assert!(
        delta_bytes * 4 < full_param_bytes,
        "the audit needs headroom"
    );

    // Snapshot: the acquired bytes must scale with the delta payload (factor
    // values + small per-tensor headers), not with the base weights. The 2×
    // factor absorbs headers and the one-off Vec growth.
    let before = bytes_allocated();
    let mut ckpt = model.checkpoint();
    let snapshot_cost = bytes_allocated() - before;
    assert!(ckpt.is_delta());
    assert!(
        snapshot_cost < 2 * delta_bytes + 1024,
        "delta snapshot acquired {snapshot_cost} B; the delta payload is only \
         {delta_bytes} B (full parameters: {full_param_bytes} B)"
    );
    assert!(
        snapshot_cost < full_param_bytes / 4,
        "delta snapshot ({snapshot_cost} B) must be nowhere near a full clone \
         ({full_param_bytes} B)"
    );

    // Drift the factors, then roll back: restore copies into the existing
    // tensors and must not touch the heap at all.
    model.visit_params(&mut |p| {
        for v in p.value.as_mut_slice() {
            *v += 0.25;
        }
    });
    let before = bytes_allocated();
    model.restore(&ckpt);
    let restore_cost = bytes_allocated() - before;
    assert_eq!(
        restore_cost, 0,
        "delta rollback acquired {restore_cost} B; it must copy in place"
    );

    // And the rollback is semantically real: a second checkpoint of the
    // restored model carries the same payload size.
    assert_eq!(ckpt.payload_bytes(), model.checkpoint().payload_bytes());
}

#[test]
fn adapter_free_checkpoint_pays_the_full_clone() {
    // The contrast case pinning what the delta path saves: without adapters
    // the checkpoint is a deep clone, so it must acquire at least the full
    // parameter payload.
    let mut rng = Rng::new(4);
    let mut model = wide_model(&mut rng);
    let full_param_bytes = (model.num_parameters() * std::mem::size_of::<f64>()) as u64;
    let before = bytes_allocated();
    let ckpt = model.checkpoint();
    let snapshot_cost = bytes_allocated() - before;
    assert!(!ckpt.is_delta());
    assert!(
        snapshot_cost >= full_param_bytes,
        "a full clone must acquire at least the parameter payload \
         ({snapshot_cost} B vs {full_param_bytes} B)"
    );
}
