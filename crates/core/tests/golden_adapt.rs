//! Golden-equivalence suite for the staged-pipeline refactor.
//!
//! Pins the raw `f64` bit patterns (FNV-1a hashed) of everything
//! [`calibrate_on_source`] and [`adapt`] produce — calibration parameters,
//! MC predictions, pseudo-labels, fine-tune losses, and the adapted model's
//! predictions — on a small deterministic toy, across the 1-D, joint-2-D,
//! per-dimension-2-D, and skip paths. Each scenario also asserts bit-identity
//! at 1, 4, and default `TASFAR_THREADS`.
//!
//! The pinned constants were captured immediately before `adapt.rs` was
//! decomposed into `core::pipeline`; they hold as long as the refactor keeps
//! the float-operation order, the RNG stream order, and the parallel chunk
//! geometry exactly.

use tasfar_core::prelude::*;
use tasfar_data::Dataset;
use tasfar_nn::parallel::{reset_threads, set_threads};
use tasfar_nn::prelude::*;

/// Runs `f` at a pinned thread count, then restores the default.
fn at_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    set_threads(n);
    let out = f();
    reset_threads();
    out
}

/// FNV-1a over the bit patterns of a value stream.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn slice(&mut self, s: &[f64]) {
        self.u64(s.len() as u64);
        for &v in s {
            self.f64(v);
        }
    }
    fn tensor(&mut self, t: &Tensor) {
        self.u64(t.rows() as u64);
        self.u64(t.cols() as u64);
        self.slice(t.as_slice());
    }
}

fn hash_calibration(calib: &SourceCalibration) -> u64 {
    let mut h = Fnv::new();
    h.f64(calib.classifier.tau);
    h.f64(calib.classifier.eta);
    h.f64(calib.median_uncertainty);
    h.u64(calib.qs.len() as u64);
    for qs in &calib.qs {
        // Probe the fitted map at fixed points instead of reading fields, so
        // the hash survives representation changes that preserve behaviour.
        for u in [0.0, 0.05, 0.2, 1.0] {
            h.f64(qs.sigma(u));
        }
    }
    h.0
}

fn hash_outcome(outcome: &AdaptationOutcome, adapted_pred: &Tensor) -> u64 {
    let mut h = Fnv::new();
    h.tensor(&outcome.mc.point);
    h.tensor(&outcome.mc.std);
    h.slice(&outcome.mc.uncertainty);
    h.u64(outcome.split.confident.len() as u64);
    h.u64(outcome.split.uncertain.len() as u64);
    for &i in outcome
        .split
        .confident
        .iter()
        .chain(&outcome.split.uncertain)
    {
        h.u64(i as u64);
    }
    h.u64(outcome.pseudo.len() as u64);
    for p in &outcome.pseudo {
        h.slice(&p.value);
        h.f64(p.credibility);
        h.f64(p.local_density_ratio);
        h.u64(p.informative as u64);
    }
    h.slice(&outcome.fit.epoch_losses);
    h.u64(outcome.fit.stopped_early_at.map_or(u64::MAX, |e| e as u64));
    h.tensor(adapted_pred);
    h.0
}

/// A deterministic toy: an *untrained* dropout MLP whose uncertainty grows
/// with input magnitude, a source batch in the small-magnitude regime and a
/// target batch with a large-magnitude (uncertain) subpopulation.
fn build_toy(dims: usize, seed: u64) -> (Sequential, Dataset, Tensor) {
    let mut rng = Rng::new(seed);
    let model = Sequential::new()
        .add(Dense::new(3, 16, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(16, dims, Init::XavierUniform, &mut rng));

    let n_src = 120;
    let xs = Tensor::rand_uniform(n_src, 3, -1.0, 1.0, &mut rng);
    let ys = Tensor::from_fn(n_src, dims, |r, d| {
        0.5 * xs.get(r, 0) + 0.1 * d as f64 + rng.gaussian(0.0, 0.05)
    });
    let source = Dataset::new(xs, ys);

    let n_tgt = 90;
    let target_x = Tensor::from_fn(n_tgt, 3, |r, _| {
        if r % 3 == 0 {
            rng.uniform(3.0, 5.0) // large-magnitude ⇒ high dropout variance
        } else {
            rng.uniform(-1.0, 1.0)
        }
    });
    (model, source, target_x)
}

fn toy_config() -> TasfarConfig {
    TasfarConfig {
        mc_samples: 10,
        grid_cell: 0.1,
        epochs: 8,
        batch_size: 16,
        early_stop: None,
        ..TasfarConfig::default()
    }
}

/// One full calibrate→adapt pass; returns the two golden hashes.
fn run_scenario(dims: usize, seed: u64, joint_2d: bool) -> (u64, u64) {
    let (mut model, source, target_x) = build_toy(dims, seed);
    let cfg = TasfarConfig {
        joint_2d,
        ..toy_config()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("toy source calibrates");
    let outcome = adapt(&mut model, &calib, &target_x, &Mse, &cfg)
        .expect("golden scenario must exercise the full pipeline");
    assert!(!outcome.pseudo.is_empty());
    let pred = model.predict(&target_x);
    (hash_calibration(&calib), hash_outcome(&outcome, &pred))
}

fn assert_golden(dims: usize, seed: u64, joint_2d: bool, expect: (u64, u64)) {
    let one = at_threads(1, || run_scenario(dims, seed, joint_2d));
    let four = at_threads(4, || run_scenario(dims, seed, joint_2d));
    let default = run_scenario(dims, seed, joint_2d);
    assert_eq!(one, four, "1 vs 4 threads");
    assert_eq!(one, default, "1 vs default threads");
    assert_eq!(
        one, expect,
        "golden hash drifted — the refactor changed observable f64 bits \
         (got ({:#018x}, {:#018x}))",
        one.0, one.1
    );
}

#[test]
fn golden_one_dimensional_path() {
    assert_golden(1, 11, true, GOLDEN_1D);
}

#[test]
fn golden_joint_2d_path() {
    assert_golden(2, 12, true, GOLDEN_JOINT_2D);
}

#[test]
fn golden_per_dimension_2d_path() {
    assert_golden(2, 12, false, GOLDEN_PER_DIM_2D);
}

/// The two degenerate splits abort adaptation with typed, recoverable
/// errors and leave the model bit-identical, at every thread count.
#[test]
fn golden_error_paths() {
    let run = || {
        let (mut model, source, target_x) = build_toy(1, 13);
        let cfg = toy_config();
        let calib = calibrate_on_source(&mut model, &source, &cfg).unwrap();
        let snapshot = model.clone();

        let tiny = SourceCalibration {
            classifier: ConfidenceClassifier::from_tau(1e-12, 0.9),
            qs: calib.qs.clone(),
            median_uncertainty: calib.median_uncertainty,
        };
        let all_uncertain = adapt(&mut model, &tiny, &target_x, &Mse, &cfg).unwrap_err();
        assert_eq!(
            all_uncertain.kind,
            ErrorKind::NoConfidentSamples {
                found: 0,
                required: 1
            }
        );
        assert!(all_uncertain.recoverable());

        let huge = SourceCalibration {
            classifier: ConfidenceClassifier::from_tau(1e12, 0.9),
            qs: calib.qs.clone(),
            median_uncertainty: calib.median_uncertainty,
        };
        let all_confident = adapt(&mut model, &huge, &target_x, &Mse, &cfg).unwrap_err();
        assert_eq!(all_confident.kind, ErrorKind::NoUncertainSamples);
        assert!(all_confident.recoverable());

        // Failed runs never touch the model.
        assert_eq!(
            model.predict(&target_x).as_slice(),
            snapshot.clone().predict(&target_x).as_slice()
        );

        let mut h = Fnv::new();
        h.u64(hash_calibration(&calib));
        h.tensor(&model.predict(&target_x));
        h.0
    };
    let one = at_threads(1, run);
    let four = at_threads(4, run);
    let default = run();
    assert_eq!(one, four, "1 vs 4 threads");
    assert_eq!(one, default, "1 vs default threads");
}

/// Turning tracing on must be purely observational: the golden hash of the
/// 1-D scenario is bit-identical with a live sink, while the captured trace
/// is valid JSONL covering all five pipeline stages and the training loop.
#[test]
fn golden_hash_unchanged_with_tracing_enabled() {
    let sink = tasfar_obs::capture();
    let got = at_threads(1, || run_scenario(1, 11, true));
    tasfar_obs::disable();
    assert_eq!(
        got, GOLDEN_1D,
        "enabling TASFAR_TRACE changed the adapted weights"
    );

    let lines = sink.lines();
    let parsed: Vec<tasfar_nn::json::Json> = lines
        .iter()
        .map(|l| tasfar_nn::json::Json::parse(l).expect("trace line parses"))
        .collect();
    // Mandatory schema on every record.
    for (record, line) in parsed.iter().zip(&lines) {
        record.field("ts").and_then(|v| v.as_u64()).expect(line);
        record.field("kind").and_then(|v| v.as_str()).expect(line);
        record.field("name").and_then(|v| v.as_str()).expect(line);
    }
    // The run-level span, all five stages, and per-epoch training events.
    for name in [
        "adapt",
        "stage.predict",
        "stage.split",
        "stage.estimate_density",
        "stage.pseudo_label",
        "stage.fine_tune",
        "train_epoch",
        "parallel_pool",
    ] {
        assert!(
            parsed
                .iter()
                .any(|r| r.get("name").and_then(|n| n.as_str().ok()) == Some(name)),
            "trace has no `{name}` record among {} lines",
            lines.len()
        );
    }
}

// Captured from the pre-refactor monolithic `adapt.rs` (post `median`
// even-length fix), release profile, this repository's deterministic RNG.
const GOLDEN_1D: (u64, u64) = (0xb7345d5c220c3d75, 0xfced5561f52c176e);
const GOLDEN_JOINT_2D: (u64, u64) = (0x191871068b8c9bc6, 0xc63b92eb247e7821);
const GOLDEN_PER_DIM_2D: (u64, u64) = (0x191871068b8c9bc6, 0x5f0c410d78b3fc34);
