//! The black-box acceptance test: the full TASFAR round trip
//! (calibrate on source → adapt on target) on [`FnRegressor`], a
//! closure-backed mock that shares no machinery with `Sequential`.
//!
//! If this compiles and passes, the adaptation pipeline provably touches
//! models only through the `Regressor`/`StochasticRegressor`/
//! `TrainableRegressor` traits — the paper's "target-agnostic, source-free,
//! black-box" claim made mechanical.

use tasfar_core::prelude::*;
use tasfar_data::Dataset;
use tasfar_nn::loss::Mse;
use tasfar_nn::model::FnRegressor;
use tasfar_nn::tensor::Tensor;

/// A mock whose point prediction is `0.9·x` (a slightly biased source
/// model) and whose per-sample stochastic spread grows with `|x|`, so
/// small-`|x|` inputs look confident and large-`|x|` inputs uncertain.
fn mock(seed: u64) -> FnRegressor {
    FnRegressor::new(
        |x| Tensor::from_fn(x.rows(), 1, |r, _| 0.9 * x.get(r, 0)),
        |x| {
            (0..x.rows())
                .map(|r| 0.02 + 0.08 * x.get(r, 0).abs())
                .collect()
        },
        1,
        seed,
    )
}

fn config() -> TasfarConfig {
    TasfarConfig {
        // Raw (absolute) uncertainty keeps the confidence ordering exactly
        // the noise-scale ordering the mock encodes.
        relative_uncertainty: false,
        scenario_tau_rescale: false,
        grid_cell: 0.05,
        epochs: 40,
        learning_rate: 0.05,
        early_stop: None,
        ..TasfarConfig::default()
    }
}

#[test]
fn fn_regressor_completes_the_full_round_trip() {
    let cfg = config();

    // Source: y = x on [−1, 1].
    let n = 240;
    let xs = Tensor::from_fn(n, 1, |r, _| -1.0 + 2.0 * r as f64 / (n - 1) as f64);
    let ys = xs.clone();
    let source = Dataset::new(xs, ys);

    let mut model = mock(0x5eed);
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("mock source calibrates");
    assert_eq!(calib.qs.len(), 1, "one Q_s fit per output dimension");
    assert!(calib.classifier.tau > 0.0);
    // σ(u) must be monotone for the mock too: spread grows with |x|.
    assert!(calib.qs[0].sigma(1.0) >= calib.qs[0].sigma(0.0));

    // Target: inputs on [0, 2] — the high-|x| half reads as uncertain, the
    // low-|x| half as confident, so every pipeline stage has work to do.
    let m = 200;
    let target_x = Tensor::from_fn(m, 1, |r, _| 2.0 * r as f64 / (m - 1) as f64);

    let outcome =
        adapt(&mut model, &calib, &target_x, &Mse, &cfg).expect("healthy mock batch adapts");

    // The pipeline ran end to end: both partitions populated, pseudo-labels
    // generated, and the fine-tune actually trained.
    assert!(!outcome.split.confident.is_empty());
    assert!(!outcome.split.uncertain.is_empty());
    assert_eq!(outcome.pseudo.len(), outcome.split.uncertain.len());
    assert!(outcome.mean_credibility() > 0.0);
    assert!(
        !outcome.fit.epoch_losses.is_empty(),
        "fine-tune must have trained at least one epoch"
    );

    // All five stages are on the trace, none skipped.
    for stage in [
        Stage::Predict,
        Stage::Split,
        Stage::EstimateDensity,
        Stage::PseudoLabel,
        Stage::FineTune,
    ] {
        let t = outcome
            .trace
            .stage(stage)
            .unwrap_or_else(|| panic!("missing trace for stage {stage}"));
        assert!(
            t.skipped.is_none(),
            "stage {stage} skipped: {:?}",
            t.skipped
        );
    }

    // Fine-tuning went through FnRegressor's own gradient path: the
    // learnable bias moved away from its zero initialisation.
    assert!(
        model.bias()[0] != 0.0,
        "adaptation must have updated the mock's bias"
    );
}

#[test]
fn fn_regressor_adaptation_is_deterministic() {
    let cfg = config();
    let n = 240;
    let xs = Tensor::from_fn(n, 1, |r, _| -1.0 + 2.0 * r as f64 / (n - 1) as f64);
    let source = Dataset::new(xs.clone(), xs);
    let m = 200;
    let target_x = Tensor::from_fn(m, 1, |r, _| 2.0 * r as f64 / (m - 1) as f64);

    let run = || {
        let mut model = mock(0x5eed);
        let calib = calibrate_on_source(&mut model, &source, &cfg).unwrap();
        let outcome = adapt(&mut model, &calib, &target_x, &Mse, &cfg).unwrap();
        (model.bias()[0].to_bits(), outcome.pseudo.len())
    };
    assert_eq!(run(), run(), "same seed → bit-identical adapted bias");
}
