//! Mid-stream chaos gauntlet: every streaming fault class — NaN burst at
//! ingest, window starvation, drift-detector flap, loss explosion during
//! re-adaptation — is injected back-to-back into one live engine. Each
//! fault must settle to a terminal `adapted` / `recovered` /
//! `degraded-to-last-good` state with the rollback pinned by
//! prediction-bit hashes; never a panic, never silent corruption.
//!
//! Faults are armed programmatically; `chaos_env.rs` owns the
//! `TASFAR_CHAOS` environment path (first-call-wins per process).

mod stream_util;

use std::sync::Mutex;

use stream_util::{fnv1a_bits, stream_toy, toy_stream_cfg};
use tasfar_core::faultinject::{self, Fault};
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

/// The armed-fault slot is process-global; the chaos tests must not
/// interleave.
static LOCK: Mutex<()> = Mutex::new(());

const CHUNK: usize = 8;
const TERMINAL: [&str; 3] = ["adapted", "recovered", "degraded-to-last-good"];

fn injected_count(fault: Fault) -> u64 {
    tasfar_obs::metrics::counter(&format!("chaos.injected.{}", fault.label())).get()
}

/// Feeds `chunks` chunks of the stream into the engine, asserting the
/// model stays usable after every push.
fn feed(
    engine: &mut StreamAdapter<Sequential>,
    stream: &Tensor,
    pos: &mut usize,
    chunks: usize,
    probe: &Tensor,
) -> Vec<StreamTick> {
    let mut ticks = Vec::new();
    for _ in 0..chunks {
        let hi = (*pos + CHUNK).min(stream.rows());
        if *pos >= hi {
            break;
        }
        let chunk = stream.slice_rows(*pos, hi);
        *pos = hi;
        ticks.push(engine.push(&chunk, &Mse));
        assert!(
            engine
                .predict(probe)
                .as_slice()
                .iter()
                .all(|v| v.is_finite()),
            "the model must stay finite after every push"
        );
    }
    ticks
}

#[test]
fn mid_stream_fault_gauntlet_settles_every_fault() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    // A stationary regime (the jump sits past the feed) — every state
    // change below is caused by an injected fault, not by real drift.
    let toy = stream_toy(41, 400, 400);
    let stream = toy.world.stream.x.clone();
    let probe = stream.slice_rows(0, 32);
    let mut engine = StreamAdapter::new(
        toy.model,
        toy.calib,
        toy.cfg,
        toy_stream_cfg(),
        DriftConfig::default(),
        RecoveryPolicy::default(),
    )
    .expect("valid geometry");
    let mut pos = 0;

    // -- Warmup: the initial guarded adaptation runs and terminates. -----
    feed(&mut engine, &stream, &mut pos, 9, &probe);
    assert!(engine.grids_frozen(), "warmup must freeze the grids");
    assert!(
        TERMINAL.contains(&engine.phase().label()),
        "warmup must reach a terminal state, got `{}`",
        engine.phase().label()
    );

    // -- Fault 1: a sensor dropout poisons a burst of rows with NaN. -----
    let injected = injected_count(Fault::StreamNanBurst);
    let rejected = engine.report().rejected;
    faultinject::arm_seeded(Fault::StreamNanBurst, 5);
    feed(&mut engine, &stream, &mut pos, 1, &probe);
    assert_eq!(injected_count(Fault::StreamNanBurst), injected + 1);
    assert_eq!(faultinject::armed(), None, "the fault is one-shot");
    assert!(
        engine.report().rejected > rejected,
        "ingest validation must reject the burst, not window it"
    );

    // -- Fault 2: an upstream outage drains the window. ------------------
    faultinject::arm(Fault::WindowStarvation);
    feed(&mut engine, &stream, &mut pos, 1, &probe);
    assert!(
        engine.window_len() <= CHUNK,
        "starvation must drain the window (len {})",
        engine.window_len()
    );
    // The stream keeps flowing and the engine simply refills.
    feed(&mut engine, &stream, &mut pos, 12, &probe);
    assert!(engine.window_len() > CHUNK);
    assert!(TERMINAL.contains(&engine.phase().label()));

    // -- Fault 3: the drift detector flaps (forced trip, no real drift). -
    let trips = engine.report().trips;
    let readapts = engine.report().readapts;
    faultinject::arm(Fault::DriftFlap);
    feed(&mut engine, &stream, &mut pos, 3, &probe);
    assert_eq!(faultinject::armed(), None);
    assert!(engine.report().trips > trips, "the flap must trip");
    assert!(
        engine.report().readapts > readapts,
        "a trip must trigger guarded re-adaptation"
    );
    assert!(TERMINAL.contains(&engine.phase().label()));

    // -- Fault 4: the re-adaptation fine-tune explodes on every retry. ---
    // Right after a (re-)adaptation the model *is* the last-good
    // checkpoint, so its prediction hash pins the state the explosion
    // must degrade back to.
    let good_hash = fnv1a_bits(engine.predict(&probe).as_slice());
    // Micro-batches in between may legitimately move the weights...
    feed(&mut engine, &stream, &mut pos, 2, &probe);
    let degraded = engine.report().degraded;
    let rollbacks = tasfar_obs::metrics::counter("drift.rollbacks").get();
    faultinject::arm(Fault::ReadaptLossExplosion);
    let outcome = engine
        .readapt(&Mse, "chaos_forced")
        .expect("the window is populated");
    // ...but the degrade must land exactly on the last good state.
    assert_eq!(outcome, StreamOutcome::DegradedLastGood);
    assert_eq!(engine.phase().label(), "degraded-to-last-good");
    assert_eq!(engine.report().degraded, degraded + 1);
    assert_eq!(
        tasfar_obs::metrics::counter("drift.rollbacks").get(),
        rollbacks + 1
    );
    assert_eq!(
        fnv1a_bits(engine.predict(&probe).as_slice()),
        good_hash,
        "degrade-to-last-good must restore the checkpoint bit-identically"
    );

    // -- The stream goes on: the degraded engine keeps serving. ----------
    feed(&mut engine, &stream, &mut pos, 2, &probe);
    assert!(engine.report().readapts >= 2);
    assert!(TERMINAL.contains(&engine.phase().label()));
}
