//! Equivalence suite for the fused batched MC-dropout path.
//!
//! [`McDropout::predict`] runs the `T` stochastic passes as one batched
//! forward; [`McDropout::predict_unfused`] runs them one by one. The model
//! contract says the two are bit-identical — same dropout mask bits drawn
//! from the same pre-split per-pass streams, same accumulation order — so
//! every output (point, MC mean, std, uncertainty) and the model's
//! post-call RNG state must match exactly, at any thread count.

use std::sync::Mutex;

use tasfar_core::uncertainty::{McDropout, McPrediction};
use tasfar_nn::parallel::{reset_threads, set_threads};
use tasfar_nn::prelude::*;

/// Thread-count changes are process-global; serialize the tests that pin one.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn at_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(n);
    let out = f();
    reset_threads();
    out
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

fn assert_prediction_bits_eq(a: &McPrediction, b: &McPrediction) {
    assert_bits_eq(&a.point, &b.point, "point");
    assert_bits_eq(&a.mc_mean, &b.mc_mean, "mc_mean");
    assert_bits_eq(&a.std, &b.std, "std");
    assert_eq!(a.uncertainty.len(), b.uncertainty.len(), "uncertainty: len");
    for (i, (x, y)) in a.uncertainty.iter().zip(&b.uncertainty).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "uncertainty: sample {i}");
    }
}

fn mlp(rng: &mut Rng, p: f64) -> Sequential {
    Sequential::new()
        .add(Dense::new(3, 16, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(p, rng))
        .add(Dense::new(16, 8, Init::HeNormal, rng))
        .add(Tanh::new())
        .add(Dropout::new(p, rng))
        .add(Dense::new(8, 2, Init::XavierUniform, rng))
}

fn batchnorm_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(3, 12, Init::HeNormal, rng))
        .add(BatchNorm1d::new(12))
        .add(Relu::new())
        .add(Dropout::new(0.25, rng))
        .add(Dense::new(12, 1, Init::XavierUniform, rng))
}

fn tcn_model(rng: &mut Rng) -> Sequential {
    // Two blocks → four dropout layers, plus a dense head.
    Sequential::new()
        .add(TcnBlock::new(2, 4, 3, 1, 10, 0.2, rng))
        .add(TcnBlock::new(4, 4, 3, 2, 10, 0.2, rng))
        .add(Dense::new(40, 2, Init::XavierUniform, rng))
}

/// Core check: clone the model, run fused on one copy and unfused on the
/// other, and demand bitwise-equal outputs *and* bitwise-equal post-call
/// behaviour (the RNG advancement left behind must match too).
fn check_equivalence(model: &Sequential, x: &Tensor, est: &McDropout) {
    let mut fused_model = model.clone();
    let mut unfused_model = model.clone();

    let fused = est.predict(&mut fused_model, x);
    let unfused = est.predict_unfused(&mut unfused_model, x);
    assert_prediction_bits_eq(&fused, &unfused);

    // Post-state parity: a second (unfused) estimate from each copy agrees,
    // proving both paths advanced the model's dropout RNGs identically.
    let after_fused = est.predict_unfused(&mut fused_model, x);
    let after_unfused = est.predict_unfused(&mut unfused_model, x);
    assert_prediction_bits_eq(&after_fused, &after_unfused);
}

#[test]
fn mlp_fused_matches_unfused() {
    let mut rng = Rng::new(11);
    let model = mlp(&mut rng, 0.2);
    let x = Tensor::rand_normal(7, 3, 0.0, 1.0, &mut rng);
    for threads in [1, 4] {
        at_threads(threads, || {
            check_equivalence(&model, &x, &McDropout::new(20));
        });
    }
}

#[test]
fn mlp_relative_uncertainty_matches() {
    let mut rng = Rng::new(12);
    let model = mlp(&mut rng, 0.3);
    let x = Tensor::rand_normal(5, 3, 0.0, 2.0, &mut rng);
    check_equivalence(&model, &x, &McDropout::new(8).relative(true));
}

#[test]
fn batchnorm_model_fused_matches_unfused() {
    // Batch norm is the one layer whose Train-mode arithmetic couples rows;
    // in StochasticEval it is frozen to running moments, which is what makes
    // the stacked forward legal. Warm the running moments first so they are
    // non-trivial.
    let mut rng = Rng::new(13);
    let mut model = batchnorm_model(&mut rng);
    let warm = Tensor::rand_normal(32, 3, 0.5, 2.0, &mut rng);
    let _ = model.forward(&warm, Mode::Train);
    let x = Tensor::rand_normal(6, 3, 0.0, 1.0, &mut rng);
    for threads in [1, 4] {
        at_threads(threads, || {
            check_equivalence(&model, &x, &McDropout::new(10));
        });
    }
}

#[test]
fn tcn_fused_matches_unfused() {
    let mut rng = Rng::new(14);
    let model = tcn_model(&mut rng);
    let x = Tensor::rand_normal(4, 20, 0.0, 1.0, &mut rng);
    for threads in [1, 4] {
        at_threads(threads, || {
            check_equivalence(&model, &x, &McDropout::new(12));
        });
    }
}

#[test]
fn zero_dropout_fused_matches_unfused() {
    // p = 0 exercises the identity path of the fused dropout kernel (no RNG
    // draws at all) — the passes are identical, so the uncertainty is zero
    // up to the rounding of mean-of-identical-values.
    let mut rng = Rng::new(15);
    let model = mlp(&mut rng, 0.0);
    let x = Tensor::rand_normal(5, 3, 0.0, 1.0, &mut rng);
    let mut fused_model = model.clone();
    let est = McDropout::new(6);
    let fused = est.predict(&mut fused_model, &x);
    assert!(fused.uncertainty.iter().all(|&u| u < 1e-12));
    check_equivalence(&model, &x, &est);
}

#[test]
fn single_row_batch_fused_matches_unfused() {
    let mut rng = Rng::new(16);
    let model = mlp(&mut rng, 0.2);
    let x = Tensor::rand_normal(1, 3, 0.0, 1.0, &mut rng);
    check_equivalence(&model, &x, &McDropout::new(20));
}

#[test]
fn predict_into_reuses_buffers_and_matches_predict() {
    let mut rng = Rng::new(17);
    let model = mlp(&mut rng, 0.2);
    let x = Tensor::rand_normal(6, 3, 0.0, 1.0, &mut rng);
    let est = McDropout::new(10);

    let mut a = model.clone();
    let mut b = model.clone();
    let mut out = McPrediction::empty();
    est.predict_into(&mut a, &x, &mut out);
    let fresh = est.predict(&mut b, &x);
    assert_prediction_bits_eq(&out, &fresh);

    // Reuse: the same out-parameter is refilled, and the second call's
    // result still matches a fresh prediction from the same model state.
    est.predict_into(&mut a, &x, &mut out);
    let fresh2 = est.predict(&mut b, &x);
    assert_prediction_bits_eq(&out, &fresh2);
}
