//! Counting-allocator proof that fused MC-dropout inference is
//! zero-allocation in steady state: after a warm-up call (arena buffers,
//! metric registrations, the model's stream buffer), repeated
//! [`McDropout::predict_into`] calls with a reused [`McPrediction`] must
//! never touch the heap.
//!
//! The audit pins `TASFAR_THREADS = 1`: the parallel runtime's pooled
//! dispatch allocates its job handle by design, while the inline path is
//! allocation-free — and fused/unfused bit-identity across thread counts is
//! already pinned by `fused_mc.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

use tasfar_core::uncertainty::{McDropout, McPrediction};
use tasfar_nn::parallel::{reset_threads, set_threads};
use tasfar_nn::prelude::*;

/// Wraps the system allocator with a per-thread allocation counter.
/// Deallocations are free of charge: the audit is about *acquiring* memory
/// in the hot loop, and counting `alloc` + `realloc` catches exactly that.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// `set_threads` is process-global; serialize the tests that pin it.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn mc_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(3, 16, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(16, 8, Init::HeNormal, rng))
        .add(Tanh::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(8, 2, Init::XavierUniform, rng))
}

#[test]
fn predict_into_is_allocation_free_after_warmup() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(1);

    let mut rng = Rng::new(1);
    let mut model = mc_model(&mut rng);
    let x = Tensor::rand_normal(12, 3, 0.0, 1.0, &mut rng);
    let est = McDropout::new(20).relative(true);
    let mut out = McPrediction::empty();

    // Warm-up: arena buffers, the model's fused stream buffer, the obs
    // metric registrations, and `out`'s own tensors all materialise here.
    for _ in 0..3 {
        est.predict_into(&mut model, &x, &mut out);
    }

    let before = alloc_count();
    for _ in 0..20 {
        est.predict_into(&mut model, &x, &mut out);
    }
    let delta = alloc_count() - before;
    reset_threads();
    assert_eq!(
        delta, 0,
        "steady-state predict_into performed {delta} heap allocations"
    );
}
