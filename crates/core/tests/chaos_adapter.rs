//! Chaos gauntlet with the adapter subspace enabled: every injectable fault
//! class must be caught and settled exactly as in the full-model suite
//! (`chaos.rs`), except the guard's checkpoint is now a KB-sized delta
//! snapshot (`SeqCheckpoint::Deltas`) — and rolling back only the factors
//! must still restore the source predictions bit-identically.

mod chaos_util;

use std::sync::Mutex;

use chaos_util::{calibrated_toy, fnv1a_bits, Toy};
use tasfar_core::faultinject::{self, Fault};
use tasfar_core::prelude::*;
use tasfar_nn::adapter::{enable_adapters, AdapterConfig};
use tasfar_nn::model::CheckpointRegressor;
use tasfar_nn::prelude::*;

/// The armed-fault slot is process-global; the chaos tests must not
/// interleave.
static LOCK: Mutex<()> = Mutex::new(());

/// A calibrated toy with rank-4 adapters attached. Attaching is
/// prediction-preserving, so the calibration stays valid.
fn adapted_toy(seed: u64) -> Toy {
    let mut toy = calibrated_toy(seed);
    let mut rng = Rng::new(seed ^ 0xada9);
    let attached = enable_adapters(&mut toy.model, &AdapterConfig::rank(4), &mut rng);
    assert!(attached > 0);
    toy
}

#[test]
fn adapted_guard_checkpoints_are_delta_sized() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let mut toy = adapted_toy(61);
    let mut ckpt = toy.model.checkpoint();
    assert!(
        ckpt.is_delta(),
        "an adapted model must snapshot factors, not a full clone"
    );
    // The toy (Dense 2→24→1) keeps 121 base weights; its rank-4 delta is
    // (2·2 + 2·24) + (24·1 + 1·1) = 77 scalars. The guard therefore holds
    // well under the full parameter payload while recovering.
    let full_bytes = {
        let mut scalars = 0usize;
        toy.model
            .visit_base_params(&mut |p| scalars += p.value.as_slice().len());
        scalars * std::mem::size_of::<f64>()
    };
    let delta_bytes = ckpt.payload_bytes();
    assert!(
        delta_bytes < full_bytes,
        "delta checkpoint ({delta_bytes} B) must undercut the base weights ({full_bytes} B)"
    );
}

#[test]
fn nan_batch_rolls_back_the_delta_bit_identically() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    let mut toy = adapted_toy(62);
    let reference_hash = fnv1a_bits(toy.model.predict(&toy.target_x).as_slice());

    faultinject::arm_seeded(Fault::NanBatch, 7);
    let outcome = adapt_guarded(
        &mut toy.model,
        &toy.calib,
        &toy.target_x,
        &Mse,
        &toy.cfg,
        &RecoveryPolicy::default(),
    );
    match &outcome {
        GuardedOutcome::FellBackToSource { error, retries } => {
            assert_eq!(error.label(), "non_finite_input");
            assert_eq!(*retries, 0);
        }
        other => panic!("expected fallback, got {}", other.label()),
    }
    // Delta-only rollback: only O(rank·dim) factor values were restored,
    // yet the composed predictions carry the exact source bit pattern.
    assert_eq!(
        fnv1a_bits(toy.model.predict(&toy.target_x).as_slice()),
        reference_hash,
        "delta rollback must restore source predictions bit-identically"
    );
    assert!(
        toy.model.has_adapters(),
        "rollback must not detach the adapters"
    );
}

#[test]
fn adapted_gauntlet_settles_every_fault_class() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faultinject::disarm();
    // Same expectations as the full-model gauntlet in `chaos.rs`: the
    // adapter subspace changes what the guard snapshots and the optimizer
    // moves, never how faults classify or recover.
    let expectations = [
        (Fault::NanBatch, "fell_back"),
        (Fault::EmptyConfidentSplit, "recovered"),
        (Fault::ZeroDensityMass, "recovered"),
        (Fault::LossExplosion, "recovered"),
    ];
    for (fault, expected) in expectations {
        let mut toy = adapted_toy(63);
        let reference_hash = fnv1a_bits(toy.model.predict(&toy.target_x).as_slice());
        match fault {
            Fault::NanBatch => faultinject::arm_seeded(fault, 11),
            _ => faultinject::arm(fault),
        }
        let policy = RecoveryPolicy {
            tau_widen: 1.01,
            ..RecoveryPolicy::default()
        };
        let outcome = adapt_guarded(
            &mut toy.model,
            &toy.calib,
            &toy.target_x,
            &Mse,
            &toy.cfg,
            &policy,
        );
        assert_eq!(
            outcome.label(),
            expected,
            "fault {} must settle as {expected} under adapters",
            fault.label()
        );
        assert_eq!(faultinject::armed(), None, "every fault is one-shot");
        if expected == "fell_back" {
            assert_eq!(
                fnv1a_bits(toy.model.predict(&toy.target_x).as_slice()),
                reference_hash,
                "fallback after {} must be bit-identical",
                fault.label()
            );
        }
    }
}
