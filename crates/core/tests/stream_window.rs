//! Sliding-window correctness suite: the incremental KDE must be
//! **bit-identical** to a from-scratch rebuild after any add/evict
//! sequence, and every degenerate window geometry must surface as a typed
//! [`ErrorKind::WindowUnderflow`] instead of a panic.

mod stream_util;

use stream_util::{fnv1a_bits, stream_toy, toy_stream_cfg};
use tasfar_core::calibration::ErrorModel;
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

/// Sliding a window over a feed with incremental add/evict must leave the
/// estimator bit-identical to one rebuilt from scratch over the surviving
/// samples — across seeds, window sizes, and repeated checkpoints.
#[test]
fn incremental_window_update_is_bit_identical_to_rebuild() {
    let spec = GridSpec::from_range(-2.0, 2.0, 0.05);
    for seed in [11_u64, 12, 13] {
        for window in [8_usize, 32, 128] {
            let mut rng = Rng::new(seed);
            let feed: Vec<(f64, f64)> = (0..300)
                .map(|_| (rng.uniform(-1.5, 1.5), rng.uniform(0.02, 0.3)))
                .collect();
            let mut inc = IncrementalKde::new(spec.clone(), ErrorModel::Gaussian);
            let mut held: std::collections::VecDeque<(f64, f64)> = Default::default();
            for (i, &(mu, sigma)) in feed.iter().enumerate() {
                if held.len() == window {
                    let (old_mu, old_sigma) = held.pop_front().unwrap();
                    inc.evict(old_mu, old_sigma);
                }
                held.push_back((mu, sigma));
                inc.add(mu, sigma);

                if (i + 1) % 50 == 0 {
                    let mut rebuilt = IncrementalKde::new(spec.clone(), ErrorModel::Gaussian);
                    for &(m, s) in &held {
                        rebuilt.add(m, s);
                    }
                    assert_eq!(inc.samples(), rebuilt.samples());
                    assert_eq!(
                        fnv1a_bits(inc.snapshot().masses()),
                        fnv1a_bits(rebuilt.snapshot().masses()),
                        "seed {seed} window {window} step {i}: incremental \
                         snapshot diverged from the rebuild"
                    );
                    assert_eq!(
                        fnv1a_bits(&inc.normalized_masses()),
                        fnv1a_bits(&rebuilt.normalized_masses()),
                        "seed {seed} window {window} step {i}: normalised mass diverged"
                    );
                }
            }
        }
    }
}

/// Evicting everything returns the estimator to its pristine empty state —
/// no residual ticks from rounding.
#[test]
fn full_eviction_leaves_no_residual_mass() {
    let spec = GridSpec::from_range(-2.0, 2.0, 0.05);
    let mut rng = Rng::new(99);
    let feed: Vec<(f64, f64)> = (0..64)
        .map(|_| (rng.uniform(-1.5, 1.5), rng.uniform(0.02, 0.3)))
        .collect();
    let mut inc = IncrementalKde::new(spec.clone(), ErrorModel::Gaussian);
    for &(m, s) in &feed {
        inc.add(m, s);
    }
    for &(m, s) in &feed {
        inc.evict(m, s);
    }
    assert_eq!(inc.samples(), 0);
    assert!(!inc.has_mass());
    let empty = IncrementalKde::new(spec, ErrorModel::Gaussian);
    assert_eq!(
        fnv1a_bits(inc.snapshot().masses()),
        fnv1a_bits(empty.snapshot().masses())
    );
}

#[test]
fn construction_rejects_underfilled_window_geometry() {
    let toy = stream_toy(21, 100, 50);

    let zero = StreamConfig {
        window: 0,
        ..toy_stream_cfg()
    };
    let err = StreamAdapter::new(
        toy.model.clone(),
        toy.calib.clone(),
        toy.cfg.clone(),
        zero,
        DriftConfig::default(),
        RecoveryPolicy::default(),
    )
    .err()
    .expect("a zero-capacity window cannot stream");
    assert_eq!(err.label(), "window_underflow");
    assert!(err.recoverable());

    let cramped = StreamConfig {
        window: 8,
        micro_batch: 16,
        ..toy_stream_cfg()
    };
    let err = StreamAdapter::new(
        toy.model,
        toy.calib,
        toy.cfg,
        cramped,
        DriftConfig::default(),
        RecoveryPolicy::default(),
    )
    .err()
    .expect("a window smaller than the micro-batch cannot stream");
    match err.kind {
        ErrorKind::WindowUnderflow { have, need } => {
            assert_eq!((have, need), (8, 16));
        }
        other => panic!("expected WindowUnderflow, got {other:?}"),
    }
}

#[test]
fn readapt_on_empty_window_is_a_typed_underflow() {
    let toy = stream_toy(22, 100, 50);
    let mut engine = StreamAdapter::new(
        toy.model,
        toy.calib,
        toy.cfg,
        toy_stream_cfg(),
        DriftConfig::default(),
        RecoveryPolicy::default(),
    )
    .expect("valid geometry");
    // All samples evicted / none ingested: re-adaptation has nothing to
    // work on and must say so, not panic.
    let err = engine.readapt(&Mse, "forced").expect_err("empty window");
    match err.kind {
        ErrorKind::WindowUnderflow { have, need } => assert_eq!((have, need), (0, 1)),
        other => panic!("expected WindowUnderflow, got {other:?}"),
    }
    assert_eq!(
        engine.phase(),
        StreamPhase::Warmup,
        "no adaptation happened"
    );
}

/// The pathological minimum geometry — a single-sample window with
/// single-sample micro-batches — must stream without panicking: every
/// skipped micro-batch surfaces as a typed, recoverable error.
#[test]
fn single_sample_window_streams_without_panicking() {
    let toy = stream_toy(23, 40, 40);
    let cfg = StreamConfig {
        window: 1,
        warmup: 1,
        micro_batch: 1,
        micro_epochs: 2,
        replay_confident: 1,
        live_window: 1,
        check_every: 4,
        grid_headroom: 3.0,
    };
    let mut engine = StreamAdapter::new(
        toy.model,
        toy.calib,
        toy.cfg,
        cfg,
        DriftConfig::default(),
        RecoveryPolicy::default(),
    )
    .expect("a one-sample window is legal, just mostly useless");
    let mut typed_errors = 0;
    for i in 0..engine_feed_len(&toy.world) {
        let chunk = toy.world.stream.x.slice_rows(i, i + 1);
        let tick = engine.push(&chunk, &Mse);
        if let Some(err) = tick.error {
            assert!(
                err.recoverable(),
                "single-sample degradation must stay recoverable: {err}"
            );
            typed_errors += 1;
        }
    }
    assert!(typed_errors > 0, "the starved geometry must report errors");
    let preds = engine.predict(&toy.world.stream.x);
    assert!(
        preds.as_slice().iter().all(|v| v.is_finite()),
        "the model must stay usable"
    );
}

fn engine_feed_len(world: &tasfar_data::sensor::SensorWorld) -> usize {
    world.stream.x.rows().min(30)
}
