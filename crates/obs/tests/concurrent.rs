//! Concurrent-emission stress test: many threads hammering spans and events
//! into the shared sink must produce a valid trace — every line parses as
//! one JSON document (no torn/interleaved lines), and the span forest
//! reconstructs with full parent linkage.
//!
//! The trace gate (`tasfar_obs::capture` / `trace_to_file` / `disable`) is
//! process-wide state, so the whole scenario lives in one `#[test]`.

use std::sync::{Arc, Barrier};

use tasfar_nn::json::Json;
use tasfar_obs::aggregate::Forest;

const THREADS: usize = 8;
const ITERS: usize = 200;

/// Runs the storm: each thread opens nested spans with fields and fires an
/// event inside the innermost one, all starting together off a barrier.
fn storm() {
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ITERS {
                    let mut outer = tasfar_obs::span("storm.outer");
                    outer.field("thread", t as u64);
                    {
                        let mut inner = tasfar_obs::span("storm.inner");
                        inner.field("iter", i as u64);
                        tasfar_obs::event(
                            "storm.tick",
                            vec![("payload", Json::Str(format!("t{t}i{i}")))],
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread panicked");
    }
}

/// Validates a captured trace: counts, parse, reconstruction, linkage.
fn check_lines(lines: &[String], context: &str) {
    // 2 spans + 1 event per iteration per thread.
    let expected = THREADS * ITERS * 3;
    assert_eq!(
        lines.len(),
        expected,
        "{context}: expected {expected} records, got {}",
        lines.len()
    );
    for line in lines {
        let record = Json::parse(line)
            .unwrap_or_else(|e| panic!("{context}: torn or invalid line {line:?}: {e}"));
        assert!(record.field("ts").unwrap().as_u64().is_ok());
        assert!(record.field("thread").unwrap().as_u64().is_ok());
    }
    let forest = Forest::parse(&lines.join("\n")).unwrap_or_else(|e| panic!("{context}: {e}"));
    assert_eq!(forest.len(), THREADS * ITERS * 2, "{context}: span count");
    assert_eq!(forest.events, THREADS * ITERS, "{context}: event count");
    assert!(
        forest.dangling_parents.is_empty(),
        "{context}: {} parent ids never emitted",
        forest.dangling_parents.len()
    );
    // Every outer span is a root (one per iteration — the stack unwinds
    // fully each loop), and every inner span hangs off an outer one.
    assert_eq!(forest.roots.len(), THREADS * ITERS, "{context}: roots");
    let agg = forest.aggregate();
    let outer = agg.iter().find(|s| s.name == "storm.outer").unwrap();
    let inner = agg.iter().find(|s| s.name == "storm.inner").unwrap();
    assert_eq!(outer.calls, (THREADS * ITERS) as u64);
    assert_eq!(inner.calls, (THREADS * ITERS) as u64);
    for &root in &forest.roots {
        assert_eq!(
            forest.spans[root].name, "storm.outer",
            "{context}: root kind"
        );
    }
}

#[test]
fn concurrent_storm_produces_untorn_reconstructible_traces() {
    // Phase 1: MemorySink via capture().
    let mem = tasfar_obs::capture();
    storm();
    check_lines(&mem.lines(), "MemorySink");
    tasfar_obs::disable();

    // Phase 2: FileSink via trace_to_file() into a scratch path.
    let dir = std::env::temp_dir().join("tasfar_obs_concurrent_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("storm.jsonl");
    tasfar_obs::trace_to_file(path.to_str().unwrap()).expect("install file sink");
    storm();
    tasfar_obs::disable(); // flushes the LineWriter before we read the file
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<String> = text.lines().map(String::from).collect();
    check_lines(&lines, "FileSink");
    let _ = std::fs::remove_file(&path);
}
