//! Trace analytics: parse a JSONL trace back into a span forest and answer
//! questions with it.
//!
//! The JSONL sinks ([`crate::sink`]) write flat records; this module is the
//! inverse — it rebuilds the span hierarchy from the `id`/`parent` linkage
//! and computes the figures an operator actually asks for:
//!
//! * **per-span-name statistics** ([`Forest::aggregate`]) — call counts,
//!   total wall time, *self* time (total minus the time spent in child
//!   spans), and child time, the numbers behind a flat profile table;
//! * **critical paths** ([`Forest::critical_path`]) — the chain of
//!   longest-duration children under a run span, i.e. where an `adapt` run
//!   actually spent its wall clock;
//! * **run coverage** ([`Forest::child_sum`]) — how much of a run span its
//!   direct children account for, the sum-check `obs-report` gates on.
//!
//! Spans emit their record on *drop*, so a child appears in the file before
//! its parent and the forest must be linked after reading the whole trace;
//! records on worker threads have no cross-thread parent and become roots of
//! their own trees (distinguished by the `thread` field).

use std::collections::HashMap;

use tasfar_nn::json::Json;

/// One span record reconstructed from the trace.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Process-unique span id.
    pub id: u64,
    /// Span name (`stage.predict`, `adapt`, …).
    pub name: String,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Per-process thread id the span ran on.
    pub thread: u64,
    /// Open timestamp, nanoseconds since the trace epoch.
    pub ts: u64,
    /// Measured wall time.
    pub dur_ns: u64,
}

/// Per-span-name aggregate statistics over one trace.
#[derive(Debug, Clone)]
pub struct NameStats {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub calls: u64,
    /// Sum of `dur_ns` over those spans.
    pub total_ns: u64,
    /// Sum of self time: `dur_ns` minus the time spent in direct child
    /// spans (clamped at zero — child clocks are read independently, so a
    /// nanosecond-scale overshoot is possible).
    pub self_ns: u64,
    /// Sum of direct-child time (`total_ns − self_ns`, pre-clamp).
    pub child_ns: u64,
    /// Largest single span of this name.
    pub max_ns: u64,
}

/// One step of a critical path: the span name and its measured duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// The span's `dur_ns`.
    pub dur_ns: u64,
    /// The span's self time (duration minus direct children).
    pub self_ns: u64,
}

/// A parsed trace: the span forest plus counts of the non-span records.
#[derive(Debug, Default)]
pub struct Forest {
    /// All spans, in file order (i.e. close order).
    pub spans: Vec<SpanNode>,
    /// Direct children of each span (indices into `spans`), in file order.
    pub children: Vec<Vec<usize>>,
    /// Indices of root spans (no parent, or parent never emitted).
    pub roots: Vec<usize>,
    /// Count of `"event"` records.
    pub events: usize,
    /// Count of records of other kinds (`manifest`, `metrics`, …).
    pub other_records: usize,
    /// The last `"metrics"` record's `fields.metrics` snapshot, if any.
    pub metrics_snapshot: Option<Json>,
    /// `parent` ids referenced by some record but never emitted as a span.
    pub dangling_parents: Vec<u64>,
}

impl Forest {
    /// Parses a JSONL trace. Lines that are not valid JSON records abort
    /// with an error naming the line; unknown kinds are counted and kept out
    /// of the forest.
    pub fn parse(text: &str) -> Result<Forest, String> {
        let mut forest = Forest::default();
        let mut referenced: Vec<(u64, usize)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = record
                .field("kind")
                .and_then(|v| v.as_str())
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            match kind {
                "span" => {
                    let get_u64 = |key: &str| {
                        record
                            .field(key)
                            .and_then(|v| v.as_u64())
                            .map_err(|e| format!("line {}: {e}", lineno + 1))
                    };
                    let parent = match record.get("parent") {
                        Some(Json::Null) | None => None,
                        Some(v) => Some(
                            v.as_u64()
                                .map_err(|e| format!("line {}: {e}", lineno + 1))?,
                        ),
                    };
                    let node = SpanNode {
                        id: get_u64("id")?,
                        name: record
                            .field("name")
                            .and_then(|v| v.as_str())
                            .map_err(|e| format!("line {}: {e}", lineno + 1))?
                            .to_string(),
                        parent,
                        thread: get_u64("thread").unwrap_or(0),
                        ts: get_u64("ts")?,
                        dur_ns: get_u64("dur_ns")?,
                    };
                    if let Some(p) = parent {
                        referenced.push((p, forest.spans.len()));
                    }
                    forest.spans.push(node);
                }
                "event" => forest.events += 1,
                "metrics" => {
                    forest.other_records += 1;
                    if let Some(snap) = record.get("fields").and_then(|f| f.get("metrics")) {
                        forest.metrics_snapshot = Some(snap.clone());
                    }
                }
                _ => forest.other_records += 1,
            }
        }
        // Link children after the whole file is read: parents close after
        // their children, so they appear later in the file.
        let by_id: HashMap<u64, usize> = forest
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        forest.children = vec![Vec::new(); forest.spans.len()];
        for &(parent_id, child_idx) in &referenced {
            match by_id.get(&parent_id) {
                Some(&p) => forest.children[p].push(child_idx),
                None => forest.dangling_parents.push(parent_id),
            }
        }
        for (i, span) in forest.spans.iter().enumerate() {
            let rooted = match span.parent {
                None => true,
                Some(p) => !by_id.contains_key(&p),
            };
            if rooted {
                forest.roots.push(i);
            }
        }
        forest.dangling_parents.sort_unstable();
        forest.dangling_parents.dedup();
        Ok(forest)
    }

    /// Total number of span records.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the trace contained no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The self time of span `idx`: its duration minus the summed duration
    /// of its direct children, clamped at zero.
    pub fn self_ns(&self, idx: usize) -> u64 {
        self.spans[idx].dur_ns.saturating_sub(self.child_sum(idx))
    }

    /// Summed duration of the direct children of span `idx`.
    pub fn child_sum(&self, idx: usize) -> u64 {
        self.children[idx]
            .iter()
            .map(|&c| self.spans[c].dur_ns)
            .sum()
    }

    /// Indices of all spans named `name`, in file order.
    pub fn named(&self, name: &str) -> Vec<usize> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-name aggregate statistics, sorted by total time descending (ties
    /// broken by name for stable output).
    pub fn aggregate(&self) -> Vec<NameStats> {
        let mut by_name: HashMap<&str, NameStats> = HashMap::new();
        for (i, span) in self.spans.iter().enumerate() {
            let child = self.child_sum(i);
            let stats = by_name.entry(&span.name).or_insert_with(|| NameStats {
                name: span.name.clone(),
                calls: 0,
                total_ns: 0,
                self_ns: 0,
                child_ns: 0,
                max_ns: 0,
            });
            stats.calls += 1;
            stats.total_ns += span.dur_ns;
            stats.self_ns += span.dur_ns.saturating_sub(child);
            stats.child_ns += child.min(span.dur_ns);
            stats.max_ns = stats.max_ns.max(span.dur_ns);
        }
        let mut out: Vec<NameStats> = by_name.into_values().collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        out
    }

    /// The critical path under span `idx`: starting at the span itself,
    /// repeatedly descend into the longest-duration direct child.
    pub fn critical_path(&self, idx: usize) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut cur = idx;
        loop {
            path.push(PathStep {
                name: self.spans[cur].name.clone(),
                dur_ns: self.spans[cur].dur_ns,
                self_ns: self.self_ns(cur),
            });
            match self.children[cur]
                .iter()
                .copied()
                .max_by_key(|&c| self.spans[c].dur_ns)
            {
                Some(next) => cur = next,
                None => return path,
            }
        }
    }

    /// Collapsed-stack flamegraph lines in inferno format: each line is
    /// `root;child;…;leaf <self_ns>`, with identical stacks merged. Lines
    /// are sorted for deterministic output; zero-self-time stacks are
    /// omitted.
    pub fn folded(&self) -> Vec<String> {
        let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        let mut stack: Vec<&str> = Vec::new();
        for &root in &self.roots {
            self.fold_into(root, &mut stack, &mut merged);
        }
        merged
            .into_iter()
            .map(|(stack, self_ns)| format!("{stack} {self_ns}"))
            .collect()
    }

    fn fold_into<'a>(
        &'a self,
        idx: usize,
        stack: &mut Vec<&'a str>,
        merged: &mut std::collections::BTreeMap<String, u64>,
    ) {
        stack.push(&self.spans[idx].name);
        let self_ns = self.self_ns(idx);
        if self_ns > 0 {
            *merged.entry(stack.join(";")).or_insert(0) += self_ns;
        }
        for &child in &self.children[idx] {
            self.fold_into(child, stack, merged);
        }
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic trace:
    ///   run (100) ── a (60) ── leaf (10)
    ///            └── b (30)
    /// plus a worker-thread root `w` (5) and one event.
    /// Children appear before parents, as a real drop-ordered trace does.
    fn sample_trace() -> String {
        [
            r#"{"ts":20,"kind":"span","name":"leaf","id":3,"parent":2,"thread":0,"dur_ns":10}"#,
            r#"{"ts":15,"kind":"span","name":"a","id":2,"parent":1,"thread":0,"dur_ns":60}"#,
            r#"{"ts":80,"kind":"event","name":"ping","parent":1,"thread":0}"#,
            r#"{"ts":76,"kind":"span","name":"b","id":4,"parent":1,"thread":0,"dur_ns":30}"#,
            r#"{"ts":30,"kind":"span","name":"w","id":5,"parent":null,"thread":1,"dur_ns":5}"#,
            r#"{"ts":10,"kind":"span","name":"run","id":1,"parent":null,"thread":0,"dur_ns":100}"#,
        ]
        .join("\n")
    }

    #[test]
    fn forest_links_children_across_drop_order() {
        let f = Forest::parse(&sample_trace()).unwrap();
        assert_eq!(f.len(), 5);
        assert_eq!(f.events, 1);
        assert!(f.dangling_parents.is_empty());
        // Roots: `run` and the worker span `w`.
        let root_names: Vec<&str> = f.roots.iter().map(|&i| f.spans[i].name.as_str()).collect();
        assert!(root_names.contains(&"run"));
        assert!(root_names.contains(&"w"));
        let run = f.named("run")[0];
        assert_eq!(f.child_sum(run), 90);
        assert_eq!(f.self_ns(run), 10);
        let a = f.named("a")[0];
        assert_eq!(f.self_ns(a), 50);
    }

    #[test]
    fn aggregate_totals_and_self_times() {
        let f = Forest::parse(&sample_trace()).unwrap();
        let agg = f.aggregate();
        // Sorted by total descending: run(100), a(60), b(30), leaf(10), w(5).
        let names: Vec<&str> = agg.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["run", "a", "b", "leaf", "w"]);
        let run = &agg[0];
        assert_eq!(
            (run.calls, run.total_ns, run.self_ns, run.child_ns),
            (1, 100, 10, 90)
        );
        // Self times over the whole forest sum to the root durations.
        let total_self: u64 = agg.iter().map(|s| s.self_ns).sum();
        assert_eq!(total_self, 100 + 5);
    }

    #[test]
    fn critical_path_follows_longest_child() {
        let f = Forest::parse(&sample_trace()).unwrap();
        let run = f.named("run")[0];
        let path: Vec<String> = f.critical_path(run).into_iter().map(|s| s.name).collect();
        assert_eq!(path, ["run", "a", "leaf"]);
    }

    #[test]
    fn folded_lines_merge_stacks_and_skip_zero_self() {
        let f = Forest::parse(&sample_trace()).unwrap();
        let folded = f.folded();
        assert!(folded.contains(&"run 10".to_string()));
        assert!(folded.contains(&"run;a 50".to_string()));
        assert!(folded.contains(&"run;a;leaf 10".to_string()));
        assert!(folded.contains(&"run;b 30".to_string()));
        assert!(folded.contains(&"w 5".to_string()));
        assert_eq!(folded.len(), 5);
        // Every line is `stack <count>`.
        for line in &folded {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn dangling_parents_are_reported_and_rooted() {
        let text =
            r#"{"ts":1,"kind":"span","name":"orphan","id":7,"parent":99,"thread":0,"dur_ns":3}"#;
        let f = Forest::parse(text).unwrap();
        assert_eq!(f.dangling_parents, vec![99]);
        assert_eq!(f.roots, vec![0]);
    }

    #[test]
    fn malformed_lines_abort_with_line_number() {
        let err = Forest::parse("{\"kind\":\"span\"}\nnot json").unwrap_err();
        assert!(err.contains("line 1"), "got: {err}");
        let err = Forest::parse("not json").unwrap_err();
        assert!(err.contains("line 1"), "got: {err}");
    }
}
