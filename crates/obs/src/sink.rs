//! Trace sinks: where emitted JSONL lines go.
//!
//! One sink is installed at a time. The default (no sink) discards lines,
//! which lets the span machinery be exercised in tests without touching the
//! filesystem; `TASFAR_TRACE=<path>` installs a [`FileSink`] and test code
//! installs a [`MemorySink`] via [`crate::capture`].

use std::fs::File;
use std::io::{LineWriter, Write};
use std::sync::{Arc, Mutex};

use crate::metrics::Counter;

/// A destination for one-line JSONL trace records.
pub trait Sink: Send + Sync {
    /// Accepts one complete JSON document (without the trailing newline).
    fn emit(&self, line: &str);
    /// Flushes any buffered lines (no-op by default).
    fn flush(&self) {}
}

/// The currently installed sink, if any.
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

/// Installs `sink`, replacing (and flushing) any previous one.
pub(crate) fn install(sink: Arc<dyn Sink>) {
    let prev = SINK.lock().unwrap_or_else(|e| e.into_inner()).replace(sink);
    if let Some(prev) = prev {
        prev.flush();
    }
}

/// Removes the current sink without flushing (callers flush first).
pub(crate) fn remove() {
    SINK.lock().unwrap_or_else(|e| e.into_inner()).take();
}

/// Hands `line` to the current sink; drops it when none is installed.
pub(crate) fn emit_line(line: &str) {
    let sink = SINK.lock().unwrap_or_else(|e| e.into_inner()).clone();
    if let Some(sink) = sink {
        sink.emit(line);
    }
}

/// Flushes the current sink, if any.
pub(crate) fn flush() {
    let sink = SINK.lock().unwrap_or_else(|e| e.into_inner()).clone();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Writes one JSON document per line to a file, line-buffered so a crashed
/// process still leaves whole lines behind.
///
/// Trace I/O failure must never take the computation down, but it must not
/// vanish either: every failed write or flush increments the
/// `obs.sink.dropped` counter, so an incomplete trace is diagnosable from
/// the metrics snapshot.
pub struct FileSink {
    writer: Mutex<LineWriter<File>>,
    dropped: Arc<Counter>,
}

impl FileSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &str) -> std::io::Result<FileSink> {
        let file = File::create(path)?;
        Ok(FileSink {
            writer: Mutex::new(LineWriter::new(file)),
            dropped: crate::metrics::counter("obs.sink.dropped"),
        })
    }
}

impl Sink for FileSink {
    fn emit(&self, line: &str) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writeln!(w, "{line}").is_err() {
            self.dropped.incr();
        }
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if w.flush().is_err() {
            self.dropped.incr();
        }
    }
}

/// Collects lines in memory; cloning shares the same buffer, so tests keep a
/// handle while the global registry holds the installed copy.
#[derive(Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A snapshot of everything captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of captured lines.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything captured so far.
    pub fn clear(&self) {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Sink for MemorySink {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn file_sink_counts_failed_writes() {
        // /dev/full opens for writing but fails every write with ENOSPC —
        // exactly the silent-loss path the dropped counter must surface.
        let sink = FileSink::create("/dev/full").expect("open /dev/full");
        let before = sink.dropped.get();
        sink.emit(r#"{"ts":0,"kind":"event","name":"doomed"}"#);
        sink.flush();
        assert!(
            sink.dropped.get() > before,
            "failed writes must increment obs.sink.dropped"
        );
    }

    #[test]
    fn file_sink_successful_writes_do_not_count_as_dropped() {
        let dir = std::env::temp_dir().join("tasfar_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.jsonl");
        let sink = FileSink::create(path.to_str().unwrap()).unwrap();
        let before = sink.dropped.get();
        sink.emit(r#"{"ts":0,"kind":"event","name":"fine"}"#);
        sink.flush();
        assert_eq!(sink.dropped.get(), before);
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"fine\""));
        let _ = std::fs::remove_file(&path);
    }
}
