//! Hierarchical spans and point events.
//!
//! A span is an RAII guard: opening it records a monotonic timestamp, an id,
//! the thread, and the innermost enclosing span on the same thread (the
//! parent); dropping it emits one JSONL record with the measured `dur_ns`.
//! Parent linkage uses a thread-local stack, so nesting is tracked without
//! any cross-thread coordination — work handed to the parallel pool shows up
//! as root spans on worker threads, distinguished by their `thread` field.
//!
//! Two constructors trade precision of the *disabled* path differently:
//!
//! * [`span`] is fully gated — when tracing is off it performs one atomic
//!   load and nothing else (no clock read, no allocation). Use it anywhere
//!   near a hot loop.
//! * [`timed_span`] always reads the monotonic clock so its [`SpanGuard::elapsed`]
//!   works even untraced — for call sites like pipeline stages that feed wall
//!   times into `StageTrace` regardless of tracing.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use tasfar_nn::json::Json;

/// The process trace epoch: `ts` fields count nanoseconds from here.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (monotonic).
pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Span ids are process-unique and never reused (0 is reserved).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Sequential per-process thread ids: `std::thread::ThreadId` has no stable
/// numeric accessor, so the trace assigns its own on first use per thread.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Ids of the open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|cell| {
        let v = cell.get();
        if v != u64::MAX {
            return v;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        cell.set(id);
        id
    })
}

/// Everything a recording span needs to emit its record on drop.
struct SpanMeta {
    name: String,
    id: u64,
    parent: Option<u64>,
    thread: u64,
    ts: u64,
    fields: Vec<(String, Json)>,
}

/// An open span; emits its JSONL record when dropped.
///
/// In the disabled state this is inert: both fields are `None` for [`span`],
/// and only the start instant is kept for [`timed_span`].
pub struct SpanGuard {
    start: Option<Instant>,
    meta: Option<Box<SpanMeta>>,
}

/// Opens a span named `name`. Fully gated: when tracing is disabled the cost
/// is a single atomic load.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            start: None,
            meta: None,
        };
    }
    open(name)
}

/// Opens a span that measures wall time even when tracing is disabled
/// ([`SpanGuard::elapsed`] stays meaningful); the record is still only
/// emitted when tracing is on.
///
/// Intended for coarse-grained call sites — pipeline stages, whole-run
/// scopes — whose timings feed non-telemetry consumers like `StageTrace`.
pub fn timed_span(name: &str) -> SpanGuard {
    let start = Instant::now();
    if !crate::enabled() {
        return SpanGuard {
            start: Some(start),
            meta: None,
        };
    }
    let mut guard = open(name);
    guard.start = Some(start);
    guard
}

#[cold]
fn open(name: &str) -> SpanGuard {
    let ts = now_ns();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let thread = thread_id();
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        start: Some(Instant::now()),
        meta: Some(Box::new(SpanMeta {
            name: name.to_string(),
            id,
            parent,
            thread,
            ts,
            fields: Vec::new(),
        })),
    }
}

impl SpanGuard {
    /// Attaches a key/value pair to the span's `fields` object. A no-op when
    /// the span is not recording.
    pub fn field(&mut self, key: &str, value: impl Into<Json>) {
        if let Some(meta) = &mut self.meta {
            meta.fields.push((key.to_string(), value.into()));
        }
    }

    /// Wall time since the span opened. Zero for a gated-off [`span`];
    /// always meaningful for [`timed_span`].
    pub fn elapsed(&self) -> Duration {
        self.start.map(|s| s.elapsed()).unwrap_or_default()
    }

    /// True when the span will emit a record on drop.
    pub fn recording(&self) -> bool {
        self.meta.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(meta) = self.meta.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // RAII makes drops LIFO per thread, but a stashed guard could
            // outlive its children; remove by id so the stack stays sane.
            if let Some(pos) = stack.iter().rposition(|&id| id == meta.id) {
                stack.remove(pos);
            }
        });
        let dur_ns = self
            .start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let meta = *meta;
        let mut pairs: Vec<(String, Json)> = vec![
            ("ts".into(), Json::UInt(meta.ts)),
            ("kind".into(), "span".into()),
            ("name".into(), Json::Str(meta.name)),
            ("id".into(), Json::UInt(meta.id)),
            ("parent".into(), meta.parent.map_or(Json::Null, Json::UInt)),
            ("thread".into(), Json::UInt(meta.thread)),
            ("dur_ns".into(), Json::UInt(dur_ns)),
        ];
        if !meta.fields.is_empty() {
            pairs.push(("fields".into(), Json::Obj(meta.fields)));
        }
        crate::sink::emit_line(&Json::Obj(pairs).to_string());
    }
}

/// Emits a point event (kind `"event"`) with the given fields. Gated exactly
/// like [`span`]: one atomic load when tracing is off.
#[inline]
pub fn event(name: &str, fields: Vec<(&str, Json)>) {
    if !crate::enabled() {
        return;
    }
    emit_record("event", name, fields);
}

/// Emits one record of an arbitrary kind, stamped with `ts`, the current
/// thread, and the innermost open span as `parent`. Callers check
/// [`crate::enabled`] first.
#[cold]
pub(crate) fn emit_record(kind: &str, name: &str, fields: Vec<(&str, Json)>) {
    let ts = now_ns();
    let thread = thread_id();
    let parent = SPAN_STACK.with(|stack| stack.borrow().last().copied());
    let mut pairs: Vec<(String, Json)> = vec![
        ("ts".into(), Json::UInt(ts)),
        ("kind".into(), kind.into()),
        ("name".into(), name.into()),
        ("parent".into(), parent.map_or(Json::Null, Json::UInt)),
        ("thread".into(), Json::UInt(thread)),
    ];
    if !fields.is_empty() {
        pairs.push(("fields".into(), Json::obj(fields)));
    }
    crate::sink::emit_line(&Json::Obj(pairs).to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn timed_span_measures_even_when_disabled() {
        // Does not toggle the global gate; only relies on elapsed().
        let g = timed_span("disabled-ok");
        std::thread::sleep(Duration::from_millis(2));
        assert!(g.elapsed() >= Duration::from_millis(2));
    }
}
