//! A process-wide metrics registry: named counters, gauges, and
//! log₂-bucketed histograms.
//!
//! Unlike spans, metrics are **always on**: an update is one relaxed atomic
//! operation, cheap enough for per-call-site counting, and benchmark
//! binaries snapshot the registry without enabling tracing. Handles are
//! `Arc`s — call sites that update in a loop should look the metric up once
//! and reuse the handle, since lookup takes the registry lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tasfar_nn::json::Json;

/// A monotonically increasing count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the value to at least `v`.
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket `b ≥ 1` covers values in `[2^(b-1), 2^b)`; bucket 0 holds zeros.
const N_BUCKETS: usize = 65;

/// A histogram over `u64` samples with logarithmic (power-of-two) buckets —
/// enough resolution for latencies and sizes without any configuration.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wraps only past `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0 < q ≤ 1`) of the recorded samples, or
    /// `None` when the histogram is empty.
    ///
    /// Finds the bucket holding the `⌈q·count⌉`-th sample and interpolates
    /// log-linearly within it: bucket `b ≥ 1` covers `[2^(b-1), 2^b)`, so
    /// the estimate is `2^(b-1) · 2^frac` where `frac` is how far into the
    /// bucket's population the target rank falls. Geometric interpolation
    /// matches the buckets' geometric spacing, so the worst-case relative
    /// error is bounded by the bucket width (a factor of 2), and in practice
    /// far less for smooth latency distributions.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let target = (q * count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                if b == 0 {
                    return Some(0.0);
                }
                let lo = (1u64 << (b - 1)) as f64;
                let frac = ((target - cum) as f64 / n as f64).clamp(0.0, 1.0);
                return Some(lo * frac.exp2());
            }
            cum += n;
        }
        // Racing `record` calls can leave `count` ahead of the bucket sums
        // for an instant; fall back to the highest populated bucket.
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, slot)| slot.load(Ordering::Relaxed) > 0)
            .map(|(b, _)| if b == 0 { 0.0 } else { (1u64 << b) as f64 })
    }

    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("count".into(), Json::UInt(self.count())),
            ("sum".into(), Json::UInt(self.sum())),
        ];
        if self.count() > 0 {
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                if let Some(v) = self.percentile(q) {
                    pairs.push((label.into(), Json::Num(v)));
                }
            }
        }
        let mut buckets: Vec<(String, Json)> = Vec::new();
        for (b, slot) in self.buckets.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n > 0 {
                // Key the bucket by its inclusive upper bound for readability.
                let hi = if b == 0 { 0 } else { (1u128 << b) - 1 };
                buckets.push((format!("le_{hi}"), Json::UInt(n)));
            }
        }
        pairs.push(("buckets".into(), Json::Obj(buckets)));
        Json::Obj(pairs)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Registered metrics in registration order.
static REGISTRY: Mutex<Vec<(String, Metric)>> = Mutex::new(Vec::new());

fn get_or_register<T>(
    name: &str,
    extract: impl Fn(&Metric) -> Option<Arc<T>>,
    make: impl FnOnce() -> Metric,
) -> Arc<T> {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, m)) = reg.iter().find(|(n, _)| n == name) {
        return extract(m)
            .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()));
    }
    let metric = make();
    let handle = extract(&metric).expect("freshly made metric has the requested kind");
    reg.push((name.to_string(), metric));
    handle
}

/// The counter named `name`, created on first use.
///
/// # Panics
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    get_or_register(
        name,
        |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        },
        || Metric::Counter(Arc::new(Counter::default())),
    )
}

/// The gauge named `name`, created on first use.
///
/// # Panics
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    get_or_register(
        name,
        |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        },
        || Metric::Gauge(Arc::new(Gauge::default())),
    )
}

/// The histogram named `name`, created on first use.
///
/// # Panics
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    get_or_register(
        name,
        |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        },
        || Metric::Histogram(Arc::new(Histogram::default())),
    )
}

/// A point-in-time JSON snapshot of every registered metric, keyed by name
/// and sorted for stable output.
pub fn snapshot() -> Json {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut pairs: Vec<(String, Json)> = reg
        .iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(c) => Json::UInt(c.get()),
                Metric::Gauge(g) => {
                    let v = g.get();
                    if v >= 0 {
                        Json::UInt(v as u64)
                    } else {
                        Json::Num(v as f64)
                    }
                }
                Metric::Histogram(h) => h.to_json(),
            };
            (name.clone(), value)
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(pairs)
}

/// Like [`snapshot`], but restricted to metrics whose name starts with
/// `prefix`. Lets a bench binary embed just its own subsystem's counters
/// (e.g. `serve.`) into a result file without dragging the whole registry
/// along.
pub fn snapshot_prefixed(prefix: &str) -> Json {
    match snapshot() {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(name, _)| name.starts_with(prefix))
                .collect(),
        ),
        other => other,
    }
}

/// Zeroes every registered metric (registrations are kept). For tests and
/// benchmark harnesses that measure one phase at a time.
pub fn reset() {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for (_, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Emits the current [`snapshot`] as a trace record of kind `"metrics"`
/// named `name`. A no-op when tracing is disabled.
pub fn emit_snapshot(name: &str) {
    if !crate::enabled() {
        return;
    }
    crate::span::emit_record("metrics", name, vec![("metrics", snapshot())]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let c = counter("test.counter");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(Arc::ptr_eq(&c, &counter("test.counter")));

        let g = gauge("test.gauge");
        g.set(7);
        g.add(-2);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 9);

        let h = histogram("test.hist");
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);

        let snap = snapshot();
        assert_eq!(snap.field("test.counter").unwrap().as_u64().unwrap(), 5);
        assert_eq!(snap.field("test.gauge").unwrap().as_u64().unwrap(), 9);
        let hist = snap.field("test.hist").unwrap();
        assert_eq!(hist.field("count").unwrap().as_u64().unwrap(), 5);
        let buckets = hist.field("buckets").unwrap();
        assert_eq!(buckets.field("le_0").unwrap().as_u64().unwrap(), 1); // 0
        assert_eq!(buckets.field("le_1").unwrap().as_u64().unwrap(), 1); // 1
        assert_eq!(buckets.field("le_3").unwrap().as_u64().unwrap(), 2); // 2, 3
        assert_eq!(buckets.field("le_2047").unwrap().as_u64().unwrap(), 1); // 1024
        assert!(buckets.get("le_1023").is_none()); // empty buckets are omitted
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("test.mismatch");
        gauge("test.mismatch");
    }

    #[test]
    fn percentile_empty_and_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.0), None, "q=0 is not a quantile");
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.percentile(0.5), Some(0.0));
        assert_eq!(h.percentile(0.99), Some(0.0));
    }

    #[test]
    fn percentile_stays_within_bucket_bounds() {
        let h = Histogram::default();
        for _ in 0..1000 {
            h.record(100); // bucket [64, 128)
        }
        for q in [0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!((64.0..=128.0).contains(&p), "q={q} -> {p} outside bucket");
        }
    }

    #[test]
    fn percentile_uniform_distribution_is_accurate() {
        // Uniform over 1..=1024: true p50 = 512, p90 ≈ 922, p99 ≈ 1014.
        let h = Histogram::default();
        for v in 1..=1024u64 {
            h.record(v);
        }
        for (q, expected) in [(0.5, 512.0), (0.9, 922.0), (0.99, 1014.0)] {
            let p = h.percentile(q).unwrap();
            let rel = (p - expected).abs() / expected;
            assert!(rel < 0.05, "q={q}: got {p}, want ~{expected} (rel {rel})");
        }
        let (p50, p90, p99) = (
            h.percentile(0.5).unwrap(),
            h.percentile(0.9).unwrap(),
            h.percentile(0.99).unwrap(),
        );
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotonic");
    }

    #[test]
    fn snapshot_includes_percentiles_for_nonempty_histograms() {
        let h = histogram("test.hist.pct");
        for v in 1..=64u64 {
            h.record(v);
        }
        let snap = snapshot();
        let hist = snap.field("test.hist.pct").unwrap();
        let p50 = hist.field("p50").unwrap().as_f64().unwrap();
        let p99 = hist.field("p99").unwrap().as_f64().unwrap();
        assert!(p50 > 0.0 && p50 <= p99);
        assert!(hist.get("p90").is_some());

        let empty = histogram("test.hist.empty");
        let _ = empty; // registered but never recorded into
        let snap = snapshot();
        assert!(snap.field("test.hist.empty").unwrap().get("p50").is_none());
    }
}
