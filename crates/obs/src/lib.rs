//! # tasfar-obs — zero-dependency telemetry for the TASFAR workspace
//!
//! TASFAR is an *operator-facing* algorithm: it adapts deployed regression
//! models without labels, so the only way to judge a production run is
//! telemetry. This crate is the workspace's single observability subsystem,
//! built in the style of `tasfar_nn::parallel` — no crates.io dependencies,
//! deterministic, and cheap enough to be compiled in everywhere:
//!
//! * **Hierarchical spans** ([`span()`] / [`timed_span`]) — RAII guards with
//!   monotonic wall time, a per-process thread id, and parent linkage via a
//!   thread-local span stack. Gated at runtime by the `TASFAR_TRACE`
//!   environment variable; in the off state a guard costs a single atomic
//!   load (no clock read, no allocation), so telemetry can never perturb the
//!   PR 1 kernels. Tracing only *observes* — adapted weights are bit-identical
//!   with tracing on or off.
//! * **A metrics registry** ([`metrics`]) — named counters, gauges, and
//!   log₂-bucketed histograms behind atomics, with a [`metrics::snapshot`]
//!   API. Metrics are always on (an atomic add per update) so benchmark
//!   binaries can snapshot them without enabling tracing.
//! * **Sinks** ([`sink`]) — a JSONL writer serialising events through the
//!   in-tree [`tasfar_nn::json`] (path taken from `TASFAR_TRACE=<file>`),
//!   plus an in-memory sink for tests ([`capture`]).
//! * **Bridges** ([`bridge`]) — adapters feeding `tasfar_nn`'s native hooks
//!   (the parallel pool's [`tasfar_nn::parallel::pool_stats`] and the
//!   [`tasfar_nn::train::TrainObserver`] hook on `TrainConfig`) into spans,
//!   events, and metrics. `tasfar_nn` cannot depend on this crate (the JSON
//!   serialiser lives there), so the substrate exposes hooks and this crate
//!   closes the loop.
//!
//! ## Event schema
//!
//! Every emitted line is one JSON object with at least `ts` (nanoseconds
//! since the process trace epoch, monotonic), `kind` (`"span"`, `"event"`,
//! `"manifest"`, or `"metrics"`), and `name`. Spans add `id`, `parent`
//! (`null` at the root), `thread`, and `dur_ns`; any record may carry a
//! nested `fields` object.
//!
//! ## Enabling a trace
//!
//! ```text
//! TASFAR_TRACE=trace.jsonl cargo run --release -p examples --bin quickstart
//! ```
//!
//! `TASFAR_TRACE` unset, empty, `0`, or `off` disables tracing entirely;
//! `1` or `on` enables collection without a file sink (for programmatic
//! sinks); anything else is treated as the output path for the JSONL sink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod bridge;
pub mod diff;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

pub use aggregate::Forest;
pub use bridge::{
    adapter_stats_json, arena_stats_json, backend_stats_json, emit_adapter_event, emit_manifest,
    emit_pool_event, host_cpus, pool_stats_json, sync_adapter_metrics, sync_arena_metrics,
    sync_backend_metrics, sync_pool_metrics, train_observer,
};
pub use sink::MemorySink;
pub use span::{event, span, timed_span, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// The runtime gate. `0` = not yet initialised from the environment,
/// `1` = tracing off, `2` = tracing on.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Serialises first-use initialisation and programmatic enable/disable.
static CONTROL: Mutex<()> = Mutex::new(());

/// Whether tracing is currently enabled.
///
/// This is the hot-path gate: after the first call it is a single relaxed
/// atomic load. The first call resolves the `TASFAR_TRACE` environment
/// variable (installing the JSONL file sink when the value names a path).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Cold path of [`enabled`]: resolve `TASFAR_TRACE` exactly once.
#[cold]
fn init_from_env() -> bool {
    let _guard = CONTROL.lock().unwrap_or_else(|e| e.into_inner());
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => return true,
        STATE_OFF => return false,
        _ => {}
    }
    let value = std::env::var("TASFAR_TRACE").unwrap_or_default();
    let trimmed = value.trim();
    let on = match trimmed {
        "" | "0" | "off" => false,
        "1" | "on" => true,
        path => {
            match sink::FileSink::create(path) {
                Ok(file_sink) => {
                    sink::install(Arc::new(file_sink));
                    true
                }
                Err(err) => {
                    // A broken trace path must not take the computation down;
                    // complain once and run untraced.
                    eprintln!("tasfar-obs: cannot open TASFAR_TRACE={path}: {err}");
                    false
                }
            }
        }
    };
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Enables tracing into a fresh in-memory sink and returns a handle to it.
///
/// Intended for tests: the handle exposes the captured JSONL lines. Any
/// previously installed sink is replaced. Call [`disable`] afterwards to
/// restore the untraced state.
pub fn capture() -> MemorySink {
    let _guard = CONTROL.lock().unwrap_or_else(|e| e.into_inner());
    let mem = MemorySink::new();
    sink::install(Arc::new(mem.clone()));
    STATE.store(STATE_ON, Ordering::Relaxed);
    mem
}

/// Enables tracing into a JSONL file at `path`, replacing any installed
/// sink. Programmatic counterpart of `TASFAR_TRACE=<path>`; used by tests
/// and tools that must trace into a specific file regardless of the
/// environment. Call [`disable`] afterwards to flush and restore the
/// untraced state.
pub fn trace_to_file(path: &str) -> std::io::Result<()> {
    let file_sink = sink::FileSink::create(path)?;
    let _guard = CONTROL.lock().unwrap_or_else(|e| e.into_inner());
    sink::install(Arc::new(file_sink));
    STATE.store(STATE_ON, Ordering::Relaxed);
    Ok(())
}

/// Disables tracing and removes the current sink (flushing it first).
pub fn disable() {
    let _guard = CONTROL.lock().unwrap_or_else(|e| e.into_inner());
    sink::flush();
    sink::remove();
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// Flushes the current sink, if any.
pub fn flush() {
    sink::flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_nn::json::Json;

    /// The global gate is process-wide state, so everything that toggles it
    /// lives in one sequential test.
    #[test]
    fn capture_gates_and_collects() {
        // Ensure a known-off baseline regardless of the environment.
        disable();
        assert!(!enabled());
        {
            let _g = span::span("invisible");
        }

        let mem = capture();
        assert!(enabled());
        {
            let mut g = span::span("visible");
            g.field("answer", 42u64);
        }
        span::event("ping", vec![("ok", Json::Bool(true))]);
        let lines = mem.lines();
        assert!(
            lines.iter().any(|l| l.contains("\"visible\"")),
            "span missing from {lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("\"ping\"")));
        assert!(!lines.iter().any(|l| l.contains("invisible")));

        // Every line is valid JSON with the required fields.
        for line in &lines {
            let v = Json::parse(line).expect("trace line must parse");
            assert!(v.field("ts").unwrap().as_u64().is_ok());
            assert!(v.field("kind").unwrap().as_str().is_ok());
            assert!(v.field("name").unwrap().as_str().is_ok());
        }

        disable();
        assert!(!enabled());
        {
            let _g = span::span("after-disable");
        }
        assert!(!mem.lines().iter().any(|l| l.contains("after-disable")));
    }
}
