//! `bench-diff` — perf-regression watchdog CLI.
//!
//! ```text
//! bench-diff <baseline.json> <candidate.json> [--verbose]
//! bench-diff --perturb <factor> <in.json> <out.json>
//! ```
//!
//! Compares a fresh bench JSON (`BENCH_kernels.json`, `BENCH_adapters.json`,
//! `results/repro_metrics.json`) against a committed baseline using the
//! per-metric relative thresholds in `tasfar_obs::diff::THRESHOLDS`.
//! Exit codes: 0 when no watched metric regressed, 1 on regression,
//! 2 on usage/parse errors.
//!
//! `--perturb` multiplies every time metric by `factor` and writes the
//! result — used by verify.sh to synthesise a regression and prove the gate
//! actually fires, without depending on external JSON tooling.

use std::process::ExitCode;

use tasfar_nn::json::Json;
use tasfar_obs::diff;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-diff <baseline.json> <candidate.json> [--verbose]\n       \
         bench-diff --perturb <factor> <in.json> <out.json>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--perturb") {
        let [_, factor, input, output] = &args[..] else {
            return usage();
        };
        let Ok(factor) = factor.parse::<f64>() else {
            eprintln!("bench-diff: bad perturbation factor {factor}");
            return usage();
        };
        let doc = match load(input) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench-diff: {e}");
                return ExitCode::from(2);
            }
        };
        let perturbed = diff::perturb(&doc, factor);
        if let Err(e) = std::fs::write(output, format!("{perturbed}\n")) {
            eprintln!("bench-diff: cannot write {output}: {e}");
            return ExitCode::from(2);
        }
        println!("bench-diff: wrote {output} with time metrics x{factor}");
        return ExitCode::SUCCESS;
    }

    let mut verbose = false;
    let mut paths: Vec<&String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--verbose" => verbose = true,
            flag if flag.starts_with("--") => {
                eprintln!("bench-diff: unknown flag {flag}");
                return usage();
            }
            _ => paths.push(arg),
        }
    }
    let [baseline_path, candidate_path] = paths[..] else {
        return usage();
    };

    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = diff::diff(&baseline, &candidate);
    if findings.is_empty() {
        eprintln!("bench-diff: no watched metrics found in {baseline_path}; nothing to compare");
        return ExitCode::from(2);
    }

    let regressions = diff::regression_count(&findings);
    for finding in &findings {
        if finding.regression {
            eprintln!("bench-diff: {}", finding.describe());
        } else if verbose {
            println!("bench-diff: {}", finding.describe());
        }
    }
    println!(
        "bench-diff: {} metrics compared, {} regression(s) ({} vs {})",
        findings.len(),
        regressions,
        candidate_path,
        baseline_path
    );
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
