//! `obs-report` — trace analytics CLI.
//!
//! Reads a JSONL trace (as produced by `TASFAR_TRACE=<path>`), reconstructs
//! the span forest, and renders a markdown profile, a collapsed-stack
//! `.folded` flamegraph, and optionally a Prometheus exposition of the
//! trace's embedded metrics snapshot.
//!
//! ```text
//! obs-report <trace.jsonl> [--md <out.md>] [--folded <out.folded>]
//!            [--prom <out.prom>] [--require-span a,b,c]
//!            [--run-span <name>] [--sum-check <name>:<tol>]
//! ```
//!
//! With no `--md` the markdown profile goes to stdout. Exit codes: 0 on
//! success, 1 when a `--require-span` or `--sum-check` assertion fails,
//! 2 on usage or parse errors.

use std::process::ExitCode;

use tasfar_obs::aggregate::Forest;
use tasfar_obs::report;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs-report <trace.jsonl> [--md <out.md>] [--folded <out.folded>] \
         [--prom <out.prom>] [--require-span a,b,c] [--run-span <name>] \
         [--sum-check <name>:<tol>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut md_out: Option<String> = None;
    let mut folded_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut run_span = "adapt".to_string();
    let mut sum_checks: Vec<(String, f64)> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--md" | "--folded" | "--prom" | "--require-span" | "--run-span" | "--sum-check" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("obs-report: {} needs a value", args[i]);
                    return usage();
                };
                match args[i].as_str() {
                    "--md" => md_out = Some(value.clone()),
                    "--folded" => folded_out = Some(value.clone()),
                    "--prom" => prom_out = Some(value.clone()),
                    "--require-span" => {
                        required.extend(value.split(',').map(|s| s.trim().to_string()))
                    }
                    "--run-span" => run_span = value.clone(),
                    "--sum-check" => {
                        let Some((name, tol)) = value.split_once(':') else {
                            eprintln!("obs-report: --sum-check wants <name>:<tol>, got {value}");
                            return usage();
                        };
                        let Ok(tol) = tol.parse::<f64>() else {
                            eprintln!("obs-report: bad tolerance in --sum-check {value}");
                            return usage();
                        };
                        sum_checks.push((name.to_string(), tol));
                    }
                    _ => unreachable!(),
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("obs-report: unknown flag {flag}");
                return usage();
            }
            path => {
                if trace_path.replace(path.to_string()).is_some() {
                    eprintln!("obs-report: more than one trace path given");
                    return usage();
                }
                i += 1;
            }
        }
    }
    let Some(trace_path) = trace_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-report: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let forest = match Forest::parse(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obs-report: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if forest.is_empty() {
        eprintln!("obs-report: {trace_path} contains no spans");
        return ExitCode::from(2);
    }

    let mut failed = false;
    if !forest.dangling_parents.is_empty() {
        eprintln!(
            "obs-report: {} span(s) reference parent ids never emitted",
            forest.dangling_parents.len()
        );
        failed = true;
    }
    for name in &required {
        if forest.named(name).is_empty() {
            eprintln!("obs-report: required span '{name}' not found in trace");
            failed = true;
        }
    }
    // The markdown profile always renders the first sum-check's tolerance
    // (default ±1%) so the coverage section matches what is being gated.
    let render_tol = sum_checks.first().map(|(_, t)| *t).unwrap_or(0.01);
    for (name, tol) in &sum_checks {
        let checks = report::sum_check(&forest, name, *tol);
        if checks.is_empty() {
            eprintln!("obs-report: --sum-check {name}: no such span in trace");
            failed = true;
        }
        for check in checks {
            if !check.ok {
                eprintln!(
                    "obs-report: sum-check failed for {name} run {}: children {} ns vs run {} ns ({:.2}%, tolerance ±{:.1}%)",
                    check.run,
                    check.stages_ns,
                    check.run_ns,
                    100.0 * check.coverage,
                    100.0 * tol
                );
                failed = true;
            }
        }
    }

    let md = report::markdown_profile(&forest, &run_span, render_tol);
    if let Some(path) = &md_out {
        if let Err(e) = std::fs::write(path, &md) {
            eprintln!("obs-report: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    } else {
        print!("{md}");
    }

    if let Some(path) = &folded_out {
        let mut lines = forest.folded().join("\n");
        lines.push('\n');
        if let Err(e) = std::fs::write(path, lines) {
            eprintln!("obs-report: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &prom_out {
        match &forest.metrics_snapshot {
            Some(snapshot) => {
                if let Err(e) = std::fs::write(path, report::prometheus_text(snapshot)) {
                    eprintln!("obs-report: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            None => {
                eprintln!("obs-report: --prom requested but the trace has no metrics record");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
