//! Validates a `TASFAR_TRACE` JSONL file.
//!
//! Every line must parse with the in-tree `tasfar_nn::json` parser and carry
//! the required `ts` / `kind` / `name` fields; `--require n1,n2,…` adds a
//! coverage check that each named record appears at least once. Used by
//! `scripts/verify.sh` as the trace smoke gate.
//!
//! ```text
//! trace-check trace.jsonl --require stage.predict,train_epoch,parallel_pool
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use tasfar_nn::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                let Some(list) = args.get(i + 1) else {
                    eprintln!("trace-check: --require needs a comma-separated name list");
                    return ExitCode::FAILURE;
                };
                required.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: trace-check <trace.jsonl> [--require name1,name2,...]");
                return ExitCode::SUCCESS;
            }
            arg if path.is_none() => {
                path = Some(arg);
                i += 1;
            }
            arg => {
                eprintln!("trace-check: unexpected argument `{arg}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace-check <trace.jsonl> [--require name1,name2,...]");
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace-check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut records = 0usize;
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut seen_names: BTreeMap<String, usize> = BTreeMap::new();
    let mut failed = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match Json::parse(line) {
            Ok(v) => v,
            Err(err) => {
                eprintln!("trace-check: {path}:{}: invalid JSON: {err}", lineno + 1);
                failed = true;
                continue;
            }
        };
        // The schema contract: every record has ts (integer), kind, name.
        if let Err(err) = record.field("ts").and_then(|v| v.as_u64()) {
            eprintln!("trace-check: {path}:{}: bad `ts`: {err}", lineno + 1);
            failed = true;
        }
        match record.field("kind").and_then(|v| v.as_str()) {
            Ok(kind) => *by_kind.entry(kind.to_string()).or_insert(0) += 1,
            Err(err) => {
                eprintln!("trace-check: {path}:{}: bad `kind`: {err}", lineno + 1);
                failed = true;
            }
        }
        match record.field("name").and_then(|v| v.as_str()) {
            Ok(name) => *seen_names.entry(name.to_string()).or_insert(0) += 1,
            Err(err) => {
                eprintln!("trace-check: {path}:{}: bad `name`: {err}", lineno + 1);
                failed = true;
            }
        }
        records += 1;
    }

    if records == 0 {
        eprintln!("trace-check: {path} contains no trace records");
        failed = true;
    }
    for name in &required {
        if !seen_names.contains_key(name) {
            eprintln!("trace-check: {path}: required record `{name}` never appeared");
            failed = true;
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    let kinds: Vec<String> = by_kind
        .iter()
        .map(|(kind, n)| format!("{n} {kind}"))
        .collect();
    println!(
        "trace-check: {path}: {records} records OK ({}); {} required names covered",
        kinds.join(", "),
        required.len()
    );
    ExitCode::SUCCESS
}
