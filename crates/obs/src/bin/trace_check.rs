//! Validates a `TASFAR_TRACE` JSONL file.
//!
//! Every line must parse with the in-tree `tasfar_nn::json` parser and carry
//! the required `ts` / `kind` / `name` fields; `--require n1,n2,…` adds a
//! coverage check that each named record appears at least once. Two
//! structural invariants are checked on top:
//!
//! * **parent linkage** — every span's non-null `parent` id must itself be
//!   emitted as a span somewhere in the file (spans serialise on drop, so
//!   parents legitimately appear *after* their children);
//! * **monotonic emission order** — per thread, records must appear in the
//!   order they were written. A span's line is written when it *closes*, so
//!   its emission time is `ts + dur_ns`; all other kinds emit at `ts`. A
//!   small slack absorbs the gap between the wall-clock `ts` stamp and the
//!   `Instant`-based duration measurement.
//!
//! Used by `scripts/verify.sh` as the trace smoke gate.
//!
//! ```text
//! trace-check trace.jsonl --require stage.predict,train_epoch,parallel_pool
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use tasfar_nn::json::Json;

/// Tolerated backwards jitter between consecutive emission times on one
/// thread (ns): `ts` and `dur_ns` come from two different clock reads.
const EMISSION_SLACK_NS: u64 = 10_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                let Some(list) = args.get(i + 1) else {
                    eprintln!("trace-check: --require needs a comma-separated name list");
                    return ExitCode::FAILURE;
                };
                required.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: trace-check <trace.jsonl> [--require name1,name2,...]");
                return ExitCode::SUCCESS;
            }
            arg if path.is_none() => {
                path = Some(arg);
                i += 1;
            }
            arg => {
                eprintln!("trace-check: unexpected argument `{arg}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace-check <trace.jsonl> [--require name1,name2,...]");
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace-check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut records = 0usize;
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut seen_names: BTreeMap<String, usize> = BTreeMap::new();
    let mut span_ids: BTreeSet<u64> = BTreeSet::new();
    // (lineno, parent id) pairs to verify once the whole file is read —
    // spans emit on drop, so a parent's own record comes after its children.
    let mut parent_refs: Vec<(usize, u64)> = Vec::new();
    // Last emission time per thread id, for the monotonic-order check.
    let mut last_emitted: BTreeMap<u64, u64> = BTreeMap::new();
    let mut failed = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match Json::parse(line) {
            Ok(v) => v,
            Err(err) => {
                eprintln!("trace-check: {path}:{}: invalid JSON: {err}", lineno + 1);
                failed = true;
                continue;
            }
        };
        // The schema contract: every record has ts (integer), kind, name.
        let ts = match record.field("ts").and_then(|v| v.as_u64()) {
            Ok(ts) => Some(ts),
            Err(err) => {
                eprintln!("trace-check: {path}:{}: bad `ts`: {err}", lineno + 1);
                failed = true;
                None
            }
        };
        let kind = match record.field("kind").and_then(|v| v.as_str()) {
            Ok(kind) => {
                *by_kind.entry(kind.to_string()).or_insert(0) += 1;
                Some(kind.to_string())
            }
            Err(err) => {
                eprintln!("trace-check: {path}:{}: bad `kind`: {err}", lineno + 1);
                failed = true;
                None
            }
        };
        match record.field("name").and_then(|v| v.as_str()) {
            Ok(name) => *seen_names.entry(name.to_string()).or_insert(0) += 1,
            Err(err) => {
                eprintln!("trace-check: {path}:{}: bad `name`: {err}", lineno + 1);
                failed = true;
            }
        }

        let is_span = kind.as_deref() == Some("span");
        let dur_ns = record.get("dur_ns").and_then(|v| v.as_u64().ok());
        if is_span {
            match record.field("id").and_then(|v| v.as_u64()) {
                Ok(id) => {
                    if !span_ids.insert(id) {
                        eprintln!("trace-check: {path}:{}: duplicate span id {id}", lineno + 1);
                        failed = true;
                    }
                }
                Err(err) => {
                    eprintln!("trace-check: {path}:{}: bad span `id`: {err}", lineno + 1);
                    failed = true;
                }
            }
            match record.get("parent") {
                Some(p) if p.is_null() => {}
                Some(p) => match p.as_u64() {
                    Ok(pid) => parent_refs.push((lineno + 1, pid)),
                    Err(err) => {
                        eprintln!("trace-check: {path}:{}: bad `parent`: {err}", lineno + 1);
                        failed = true;
                    }
                },
                None => {
                    eprintln!("trace-check: {path}:{}: span missing `parent`", lineno + 1);
                    failed = true;
                }
            }
            if dur_ns.is_none() {
                eprintln!("trace-check: {path}:{}: span missing `dur_ns`", lineno + 1);
                failed = true;
            }
        }

        // Emission-order check: a span line is written when the span closes
        // (ts + dur_ns); events/manifest/metrics are written at ts. Records
        // on one thread must appear in nondecreasing emission order.
        if let Some(ts) = ts {
            let thread = record.get("thread").and_then(|v| v.as_u64().ok());
            let emitted = if is_span {
                ts.saturating_add(dur_ns.unwrap_or(0))
            } else {
                ts
            };
            if let Some(thread) = thread {
                let last = last_emitted.entry(thread).or_insert(0);
                if emitted.saturating_add(EMISSION_SLACK_NS) < *last {
                    eprintln!(
                        "trace-check: {path}:{}: emission time went backwards on thread {thread} ({emitted} < {last})",
                        lineno + 1
                    );
                    failed = true;
                }
                *last = (*last).max(emitted);
            }
        }
        records += 1;
    }

    if records == 0 {
        eprintln!("trace-check: {path} contains no trace records");
        failed = true;
    }
    for (lineno, pid) in &parent_refs {
        if !span_ids.contains(pid) {
            eprintln!("trace-check: {path}:{lineno}: span parent id {pid} was never emitted");
            failed = true;
        }
    }
    for name in &required {
        if !seen_names.contains_key(name) {
            eprintln!("trace-check: {path}: required record `{name}` never appeared");
            failed = true;
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    let kinds: Vec<String> = by_kind
        .iter()
        .map(|(kind, n)| format!("{n} {kind}"))
        .collect();
    println!(
        "trace-check: {path}: {records} records OK ({}); {} parent links resolved; {} required names covered",
        kinds.join(", "),
        parent_refs.len(),
        required.len()
    );
    ExitCode::SUCCESS
}
