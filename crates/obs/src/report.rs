//! Rendering the [`crate::aggregate`] analytics for humans and tools.
//!
//! Three output formats:
//!
//! * [`markdown_profile`] — a flat per-span-name profile table (calls,
//!   total/self/child wall time, share of self time) plus the critical path
//!   and stage coverage of every run span, suitable for pasting into a PR;
//! * the collapsed-stack flamegraph lines come from
//!   [`crate::aggregate::Forest::folded`] and are written by `obs-report`
//!   as a `.folded` file (one `stack self_ns` per line, inferno-compatible);
//! * [`prometheus_text`] — a Prometheus text-exposition rendering of a
//!   [`crate::metrics::snapshot`] JSON value (counters, gauges, and log₂
//!   histograms with cumulative `le` buckets and `p50`/`p90`/`p99` summary
//!   lines), the groundwork for a future `tasfar-serve` `/metrics` endpoint.

use tasfar_nn::json::Json;

use crate::aggregate::Forest;

/// The result of checking one run span's direct-child coverage.
#[derive(Debug, Clone)]
pub struct RunCheck {
    /// Which run (1-based, in trace order).
    pub run: usize,
    /// The run span's duration.
    pub run_ns: u64,
    /// Summed duration of its direct child spans.
    pub stages_ns: u64,
    /// `stages_ns / run_ns`.
    pub coverage: f64,
    /// Whether `coverage` is within the tolerance around 1.
    pub ok: bool,
}

/// Sum-checks every span named `run_name`: its direct children (the pipeline
/// stages, for `adapt`) must account for the run's duration within
/// `tolerance` (e.g. `0.01` for ±1%).
pub fn sum_check(forest: &Forest, run_name: &str, tolerance: f64) -> Vec<RunCheck> {
    forest
        .named(run_name)
        .into_iter()
        .enumerate()
        .map(|(i, idx)| {
            let run_ns = forest.spans[idx].dur_ns;
            let stages_ns = forest.child_sum(idx);
            let coverage = if run_ns == 0 {
                1.0
            } else {
                stages_ns as f64 / run_ns as f64
            };
            RunCheck {
                run: i + 1,
                run_ns,
                stages_ns,
                coverage,
                ok: (coverage - 1.0).abs() <= tolerance,
            }
        })
        .collect()
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the whole-trace profile as GitHub-flavoured markdown: the span
/// table sorted by total time, then the critical path of each `run_name`
/// span and its stage-coverage sum-check.
pub fn markdown_profile(forest: &Forest, run_name: &str, tolerance: f64) -> String {
    let mut out = String::new();
    let agg = forest.aggregate();
    let total_self: u64 = agg.iter().map(|s| s.self_ns).sum();
    out.push_str(&format!(
        "## Span profile\n\n{} spans, {} events, {} other records; {} root span(s)\n\n",
        forest.len(),
        forest.events,
        forest.other_records,
        forest.roots.len()
    ));
    out.push_str("| span | calls | total ms | self ms | child ms | self % |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|\n");
    for s in &agg {
        let pct = if total_self == 0 {
            0.0
        } else {
            100.0 * s.self_ns as f64 / total_self as f64
        };
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.1}% |\n",
            s.name,
            s.calls,
            ms(s.total_ns),
            ms(s.self_ns),
            ms(s.child_ns),
            pct
        ));
    }

    let runs = forest.named(run_name);
    if !runs.is_empty() {
        out.push_str(&format!("\n## Critical path (`{run_name}` runs)\n\n"));
        for (i, &idx) in runs.iter().enumerate() {
            let path = forest.critical_path(idx);
            let rendered: Vec<String> = path
                .iter()
                .map(|step| format!("{} ({:.3} ms)", step.name, ms(step.dur_ns)))
                .collect();
            out.push_str(&format!("- run {}: {}\n", i + 1, rendered.join(" → ")));
        }
        out.push_str(&format!(
            "\n## Stage coverage (direct children vs the `{run_name}` span, tolerance ±{:.1}%)\n\n",
            100.0 * tolerance
        ));
        for check in sum_check(forest, run_name, tolerance) {
            out.push_str(&format!(
                "- run {}: stages {:.3} ms / run {:.3} ms = {:.2}% — {}\n",
                check.run,
                ms(check.stages_ns),
                ms(check.run_ns),
                100.0 * check.coverage,
                if check.ok { "OK" } else { "FAIL" }
            ));
        }
    }
    out
}

/// Sanitises a metric name for Prometheus: every character outside
/// `[a-zA-Z0-9_]` becomes `_`, and the `tasfar_` namespace is prepended.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("tasfar_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a [`crate::metrics::snapshot`] JSON value as Prometheus text
/// exposition format.
///
/// Counters and gauges become single samples; histogram objects (detected by
/// their `count`/`sum`/`buckets` fields) become `_bucket` samples with
/// cumulative counts at each recorded `le` upper bound plus `+Inf`, a
/// `_sum`, a `_count`, and the snapshot's `p50`/`p90`/`p99` estimates as a
/// summary-style `{quantile="…"}` series.
pub fn prometheus_text(snapshot: &Json) -> String {
    let Json::Obj(pairs) = snapshot else {
        return String::new();
    };
    let mut out = String::new();
    for (name, value) in pairs {
        // `runs` and other non-metric extensions of a snapshot file are not
        // scalar or histogram shaped; skip anything unrecognised.
        let pname = prom_name(name);
        match value {
            Json::UInt(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
            }
            Json::Num(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
            }
            Json::Obj(_) if value.get("buckets").is_some() => {
                let count = value
                    .get("count")
                    .and_then(|v| v.as_u64().ok())
                    .unwrap_or(0);
                let sum = value.get("sum").and_then(|v| v.as_u64().ok()).unwrap_or(0);
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let mut cum = 0u64;
                if let Some(Json::Obj(buckets)) = value.get("buckets") {
                    // Bucket keys are `le_<hi>`; order them numerically.
                    let mut parsed: Vec<(u128, u64)> = buckets
                        .iter()
                        .filter_map(|(k, v)| {
                            let hi = k.strip_prefix("le_")?.parse::<u128>().ok()?;
                            Some((hi, v.as_u64().ok()?))
                        })
                        .collect();
                    parsed.sort_unstable();
                    for (hi, n) in parsed {
                        cum += n;
                        out.push_str(&format!("{pname}_bucket{{le=\"{hi}\"}} {cum}\n"));
                    }
                }
                out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {count}\n"));
                out.push_str(&format!("{pname}_sum {sum}\n"));
                out.push_str(&format!("{pname}_count {count}\n"));
                for q in ["p50", "p90", "p99"] {
                    if let Some(v) = value.get(q).and_then(|v| v.as_f64().ok()) {
                        let quantile = format!("0.{}", &q[1..]);
                        out.push_str(&format!("{pname}{{quantile=\"{quantile}\"}} {v}\n"));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_forest() -> Forest {
        let text = [
            r#"{"ts":20,"kind":"span","name":"stage.predict","id":3,"parent":1,"thread":0,"dur_ns":40}"#,
            r#"{"ts":61,"kind":"span","name":"stage.fine_tune","id":4,"parent":1,"thread":0,"dur_ns":59}"#,
            r#"{"ts":10,"kind":"span","name":"adapt","id":1,"parent":null,"thread":0,"dur_ns":100}"#,
        ]
        .join("\n");
        Forest::parse(&text).unwrap()
    }

    #[test]
    fn sum_check_flags_coverage() {
        let f = sample_forest();
        let checks = sum_check(&f, "adapt", 0.02);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].stages_ns, 99);
        assert!(checks[0].ok, "99/100 is within ±2%");
        let strict = sum_check(&f, "adapt", 0.005);
        assert!(!strict[0].ok, "99/100 is outside ±0.5%");
    }

    #[test]
    fn markdown_profile_contains_table_path_and_check() {
        let f = sample_forest();
        let md = markdown_profile(&f, "adapt", 0.05);
        assert!(md.contains("| span | calls |"));
        assert!(md.contains("| adapt | 1 |"));
        assert!(md.contains("| stage.fine_tune | 1 |"));
        assert!(md.contains("adapt (0.000 ms) → stage.fine_tune (0.000 ms)"));
        assert!(md.contains("OK"), "coverage line present: {md}");
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let snap = Json::parse(
            r#"{"adapt.runs":5,"pool.max_queue_depth":2,
                "pipeline.stage_ns.predict":{"count":3,"sum":900,
                  "buckets":{"le_255":1,"le_511":2},"p50":300.0,"p90":480.0,"p99":500.0},
                "runs":[{"scheme":"x"}]}"#,
        )
        .unwrap();
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE tasfar_adapt_runs gauge\ntasfar_adapt_runs 5\n"));
        assert!(text.contains("tasfar_pool_max_queue_depth 2"));
        assert!(text.contains("# TYPE tasfar_pipeline_stage_ns_predict histogram"));
        // Buckets are cumulative: 1 at le_255, 1+2=3 at le_511, 3 at +Inf.
        assert!(text.contains("tasfar_pipeline_stage_ns_predict_bucket{le=\"255\"} 1"));
        assert!(text.contains("tasfar_pipeline_stage_ns_predict_bucket{le=\"511\"} 3"));
        assert!(text.contains("tasfar_pipeline_stage_ns_predict_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tasfar_pipeline_stage_ns_predict_sum 900"));
        assert!(text.contains("tasfar_pipeline_stage_ns_predict_count 3"));
        assert!(text.contains("tasfar_pipeline_stage_ns_predict{quantile=\"0.50\"} 300"));
        // The non-metric `runs` array is skipped, not mangled.
        assert!(!text.contains("tasfar_runs"));
    }
}
