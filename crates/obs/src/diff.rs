//! Bench-baseline comparison: the engine behind the `bench-diff` binary.
//!
//! Compares a freshly generated `BENCH_kernels.json`, `BENCH_adapters.json`,
//! or `results/repro_metrics.json` against the committed baseline and flags
//! per-metric regressions. Every watched metric is lower-is-better; a
//! candidate value is a regression when it exceeds
//! `baseline * (1 + threshold)` for that metric's relative threshold.
//!
//! Rows inside a `results` array are keyed by whichever identity fields they
//! carry (`kernel`/`size`/`backend`/`threads` for kernel benches,
//! `task`/`variant` for adapter sweeps), so reordering rows between runs is
//! harmless. A `stage_latency_ns` object (per-stage `p50`/`p99`) is compared
//! stage by stage. Baseline rows or metrics missing from the candidate are
//! regressions too — losing coverage must not pass silently.

use tasfar_nn::json::Json;

/// Relative headroom allowed per metric before a higher candidate value
/// counts as a regression. `resident_bytes` gets zero headroom: adapter
/// memory is deterministic, so any growth is a real change.
pub const THRESHOLDS: &[(&str, f64)] = &[
    ("ns_per_iter", 0.10),
    ("ns_per_iter_p50", 0.15),
    ("ns_per_iter_p90", 0.20),
    ("adapt_ms", 0.25),
    ("err", 0.05),
    ("detect_latency_samples", 0.20),
    ("resident_bytes", 0.0),
    // Serving-bench request latencies (BENCH_serve.json): p50 tracks the
    // typical fused path, p99 the queueing tail — single-run numbers, so
    // the tail gets more headroom.
    ("p50_ns", 0.15),
    ("p99_ns", 0.25),
];

/// Relative headroom for per-stage latency percentiles in
/// `stage_latency_ns` sections (single-run numbers, so noisier).
pub const STAGE_LATENCY_THRESHOLD: f64 = 0.25;

/// One comparison outcome. `regression` is true when the candidate exceeded
/// the allowed headroom (or the metric/row disappeared).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Row identity (`kernel|size|backend|tN`, `task|variant`, or a
    /// `stage_latency_ns|stage` key).
    pub key: String,
    /// The metric compared (annotated when missing from the candidate).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value (`NaN` when missing).
    pub candidate: f64,
    /// `(candidate - baseline) / baseline`.
    pub rel_change: f64,
    /// The relative headroom this metric was allowed.
    pub threshold: f64,
    /// Whether the candidate exceeded the headroom.
    pub regression: bool,
}

impl Finding {
    /// One-line human rendering for CLI output.
    pub fn describe(&self) -> String {
        format!(
            "{} {}: baseline {:.3} -> candidate {:.3} ({:+.1}%, allowed +{:.0}%){}",
            self.key,
            self.metric,
            self.baseline,
            self.candidate,
            100.0 * self.rel_change,
            100.0 * self.threshold,
            if self.regression { " REGRESSION" } else { "" }
        )
    }
}

/// Builds the identity key of a bench row from whichever id fields exist.
fn row_key(row: &Json) -> String {
    let mut parts = Vec::new();
    for field in ["kernel", "task", "size", "variant", "backend"] {
        if let Some(v) = row.get(field).and_then(|v| v.as_str().ok()) {
            parts.push(v.to_string());
        }
    }
    if let Some(v) = row.get("threads").and_then(|v| v.as_u64().ok()) {
        parts.push(format!("t{v}"));
    }
    if parts.is_empty() {
        "<anonymous>".to_string()
    } else {
        parts.join("|")
    }
}

fn compare_value(
    key: &str,
    metric: &str,
    baseline: f64,
    candidate: Option<f64>,
    threshold: f64,
    findings: &mut Vec<Finding>,
) {
    let Some(candidate) = candidate else {
        findings.push(Finding {
            key: key.to_string(),
            metric: format!("{metric} (missing from candidate)"),
            baseline,
            candidate: f64::NAN,
            rel_change: f64::INFINITY,
            threshold,
            regression: true,
        });
        return;
    };
    let rel_change = if baseline == 0.0 {
        if candidate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (candidate - baseline) / baseline
    };
    findings.push(Finding {
        key: key.to_string(),
        metric: metric.to_string(),
        baseline,
        candidate,
        rel_change,
        threshold,
        regression: rel_change > threshold,
    });
}

fn compare_rows(key: &str, baseline: &Json, candidate: &Json, findings: &mut Vec<Finding>) {
    for &(metric, threshold) in THRESHOLDS {
        let Some(base) = baseline.get(metric).and_then(|v| v.as_f64().ok()) else {
            continue; // metric not recorded in the baseline: nothing to hold the line on
        };
        let cand = candidate.get(metric).and_then(|v| v.as_f64().ok());
        compare_value(key, metric, base, cand, threshold, findings);
    }
}

fn compare_stage_latency(baseline: &Json, candidate: Option<&Json>, findings: &mut Vec<Finding>) {
    let Json::Obj(stages) = baseline else { return };
    for (stage, base_stats) in stages {
        let key = format!("stage_latency_ns|{stage}");
        let cand_stats = candidate.and_then(|c| c.get(stage));
        for quantile in ["p50", "p99"] {
            let Some(base) = base_stats.get(quantile).and_then(|v| v.as_f64().ok()) else {
                continue;
            };
            let cand = cand_stats
                .and_then(|s| s.get(quantile))
                .and_then(|v| v.as_f64().ok());
            compare_value(
                &key,
                quantile,
                base,
                cand,
                STAGE_LATENCY_THRESHOLD,
                findings,
            );
        }
    }
}

/// Compares two bench JSON documents. Returns every watched metric that was
/// present in the baseline, whether it regressed or not; the caller decides
/// how to report and whether to fail.
pub fn diff(baseline: &Json, candidate: &Json) -> Vec<Finding> {
    let mut findings = Vec::new();

    if let Some(Json::Arr(base_rows)) = baseline.get("results") {
        let cand_rows: Vec<&Json> = match candidate.get("results") {
            Some(Json::Arr(rows)) => rows.iter().collect(),
            _ => Vec::new(),
        };
        for base_row in base_rows {
            let key = row_key(base_row);
            match cand_rows.iter().find(|r| row_key(r) == key) {
                Some(cand_row) => compare_rows(&key, base_row, cand_row, &mut findings),
                None => findings.push(Finding {
                    key,
                    metric: "<row missing from candidate>".to_string(),
                    baseline: 0.0,
                    candidate: f64::NAN,
                    rel_change: f64::INFINITY,
                    threshold: 0.0,
                    regression: true,
                }),
            }
        }
    }

    if let Some(base_stages) = baseline.get("stage_latency_ns") {
        compare_stage_latency(
            base_stages,
            candidate.get("stage_latency_ns"),
            &mut findings,
        );
    }

    // repro_metrics.json carries histograms at the top level; their p99s are
    // covered via stage_latency_ns, so nothing further to do here.
    findings
}

/// Multiplies every time-valued metric by `factor`, returning the perturbed
/// document. Used by `bench-diff --perturb` to synthesise a regression for
/// the verify.sh gate without external tooling.
pub fn perturb(doc: &Json, factor: f64) -> Json {
    const TIME_METRICS: &[&str] = &[
        "ns_per_iter",
        "ns_per_iter_p50",
        "ns_per_iter_p90",
        "wall_ns_total",
        "adapt_ms",
        "detect_latency_samples",
        "p50",
        "p90",
        "p99",
        "p50_ns",
        "p99_ns",
    ];
    fn walk(v: &Json, factor: f64) -> Json {
        match v {
            Json::Obj(pairs) => Json::Obj(
                pairs
                    .iter()
                    .map(|(k, child)| {
                        let scaled = if TIME_METRICS.contains(&k.as_str()) {
                            match child {
                                Json::Num(n) => Json::Num(n * factor),
                                Json::UInt(n) => Json::Num(*n as f64 * factor),
                                other => walk(other, factor),
                            }
                        } else {
                            walk(child, factor)
                        };
                        (k.clone(), scaled)
                    })
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(|i| walk(i, factor)).collect()),
            other => other.clone(),
        }
    }
    walk(doc, factor)
}

/// Counts regressions in a finding set.
pub fn regression_count(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.regression).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels_doc() -> Json {
        Json::parse(
            r#"{"results":[
                {"kernel":"matmul","size":"32","backend":"blocked","threads":1,
                 "ns_per_iter":1000.0,"ns_per_iter_p50":1100.0,"wall_ns_total":5000.0},
                {"kernel":"matmul","size":"32","backend":"naive","threads":1,
                 "ns_per_iter":2000.0}
              ],
              "stage_latency_ns":{"predict":{"p50":500.0,"p99":900.0}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn identity_diff_has_no_regressions() {
        let doc = kernels_doc();
        let findings = diff(&doc, &doc);
        assert!(!findings.is_empty());
        assert_eq!(regression_count(&findings), 0);
    }

    #[test]
    fn perturbed_times_regress_but_small_noise_passes() {
        let doc = kernels_doc();
        let perturbed = perturb(&doc, 1.25);
        let findings = diff(&doc, &perturbed);
        assert!(
            regression_count(&findings) >= 3,
            "25% slower must trip ns_per_iter (10%), p50 (15%), and stage p50/p99 (25% boundary is exclusive): {findings:?}"
        );
        let noisy = perturb(&doc, 1.05);
        assert_eq!(
            regression_count(&diff(&doc, &noisy)),
            0,
            "5% jitter stays inside every threshold"
        );
    }

    #[test]
    fn missing_row_and_missing_metric_are_regressions() {
        let doc = kernels_doc();
        let shrunk = Json::parse(
            r#"{"results":[
                {"kernel":"matmul","size":"32","backend":"blocked","threads":1,
                 "ns_per_iter":1000.0}
              ]}"#,
        )
        .unwrap();
        let findings = diff(&doc, &shrunk);
        let regressions: Vec<&Finding> = findings.iter().filter(|f| f.regression).collect();
        assert!(
            regressions.iter().any(|f| f.metric.contains("row missing")),
            "dropped naive row is a regression: {findings:?}"
        );
        assert!(
            regressions
                .iter()
                .any(|f| f.metric.contains("ns_per_iter_p50")),
            "dropped p50 metric is a regression: {findings:?}"
        );
        assert!(
            regressions
                .iter()
                .any(|f| f.key.starts_with("stage_latency_ns")),
            "dropped stage section is a regression: {findings:?}"
        );
    }

    #[test]
    fn serve_latency_metrics_are_watched() {
        let base = Json::parse(
            r#"{"results":[{"task":"serve","size":"tenants:1000","variant":"batched",
                 "ops_per_sec":104000.0,"p50_ns":52000,"p99_ns":210000,
                 "resident_bytes":16528}]}"#,
        )
        .unwrap();
        assert_eq!(regression_count(&diff(&base, &base)), 0);
        let slow = perturb(&base, 1.3);
        assert!(
            regression_count(&diff(&base, &slow)) >= 2,
            "30% slower must trip both p50_ns (15%) and p99_ns (25%)"
        );
        let jitter = perturb(&base, 1.10);
        assert_eq!(
            regression_count(&diff(&base, &jitter)),
            0,
            "10% jitter stays inside the p50_ns/p99_ns headroom, and perturb \
             leaves the zero-headroom resident_bytes untouched"
        );
    }

    #[test]
    fn memory_has_zero_headroom() {
        let base = Json::parse(
            r#"{"results":[{"task":"pdr","variant":"rank:8","resident_bytes":19136,"adapt_ms":100.0,"err":0.03}]}"#,
        )
        .unwrap();
        let bigger = Json::parse(
            r#"{"results":[{"task":"pdr","variant":"rank:8","resident_bytes":19137,"adapt_ms":100.0,"err":0.03}]}"#,
        )
        .unwrap();
        assert_eq!(regression_count(&diff(&base, &base)), 0);
        assert_eq!(regression_count(&diff(&base, &bigger)), 1);
    }

    #[test]
    fn row_keys_use_identity_fields() {
        let row = Json::parse(
            r#"{"kernel":"matmul","size":"32","backend":"blocked","threads":4,"ns_per_iter":1.0}"#,
        )
        .unwrap();
        assert_eq!(row_key(&row), "matmul|32|blocked|t4");
        let adapter = Json::parse(r#"{"task":"pdr","variant":"rank:8","err":1.0}"#).unwrap();
        assert_eq!(row_key(&adapter), "pdr|rank:8");
    }
}
