//! Bridges between `tasfar_nn`'s native instrumentation hooks and the obs
//! layer.
//!
//! The dependency graph points one way — this crate serialises through
//! `tasfar_nn::json`, so the substrate cannot call obs directly. Instead it
//! exposes passive hooks ([`tasfar_nn::parallel::pool_stats`] and the
//! [`TrainObserver`] slot on `TrainConfig`), and this module turns them into
//! trace records and registry metrics.

use std::sync::Arc;
use std::time::Duration;

use tasfar_nn::json::Json;
use tasfar_nn::parallel;
use tasfar_nn::train::TrainObserver;

/// Wraps an `f64` that may be non-finite: the JSON writer rejects NaN and
/// infinities, so those serialise as strings instead of aborting a trace.
fn num(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Str(v.to_string())
    }
}

/// A [`TrainObserver`] that emits one `train_epoch` event per epoch (loss,
/// learning rate, wall time) and a `train_early_stop` event when the Fig. 13
/// rule fires, and counts both in the metrics registry.
pub struct TrainTelemetry;

impl TrainObserver for TrainTelemetry {
    fn on_epoch(&self, epoch: usize, mean_loss: f64, lr: f64, wall: Duration) {
        crate::metrics::counter("train.epochs").incr();
        crate::span::event(
            "train_epoch",
            vec![
                ("epoch", epoch.into()),
                ("loss", num(mean_loss)),
                ("lr", num(lr)),
                ("dur_ns", (wall.as_nanos() as u64).into()),
            ],
        );
    }

    fn on_early_stop(&self, epoch: usize) {
        crate::metrics::counter("train.early_stops").incr();
        crate::span::event("train_early_stop", vec![("epoch", epoch.into())]);
    }
}

/// The observer to put on a `TrainConfig`: `Some(TrainTelemetry)` when
/// tracing is enabled, `None` otherwise (keeping the unobserved training
/// loop free of clock reads).
pub fn train_observer() -> Option<Arc<dyn TrainObserver>> {
    if crate::enabled() {
        Some(Arc::new(TrainTelemetry))
    } else {
        None
    }
}

/// The parallel pool's counters as one JSON object (cumulative totals).
pub fn pool_stats_json() -> Json {
    let stats = parallel::pool_stats();
    Json::obj(vec![
        ("threads", Json::from(parallel::current_threads())),
        ("jobs_submitted", Json::UInt(stats.jobs_submitted)),
        ("inline_regions", Json::UInt(stats.inline_regions)),
        ("chunks_total", Json::UInt(stats.chunks_total)),
        ("submitter_chunks", Json::UInt(stats.submitter_chunks)),
        (
            "worker_chunks",
            Json::Arr(stats.worker_chunks.iter().map(|&c| Json::UInt(c)).collect()),
        ),
        ("workers_spawned", Json::UInt(stats.workers_spawned)),
        ("max_queue_depth", Json::UInt(stats.max_queue_depth)),
    ])
}

/// Mirrors the pool counters into the metrics registry as gauges, so a
/// [`crate::metrics::snapshot`] includes pool utilization without the caller
/// touching `tasfar_nn::parallel` directly.
pub fn sync_pool_metrics() {
    let stats = parallel::pool_stats();
    crate::metrics::gauge("pool.jobs_submitted").set(stats.jobs_submitted as i64);
    crate::metrics::gauge("pool.inline_regions").set(stats.inline_regions as i64);
    crate::metrics::gauge("pool.chunks_total").set(stats.chunks_total as i64);
    crate::metrics::gauge("pool.submitter_chunks").set(stats.submitter_chunks as i64);
    crate::metrics::gauge("pool.workers_spawned").set(stats.workers_spawned as i64);
    crate::metrics::gauge("pool.max_queue_depth").set(stats.max_queue_depth as i64);
    for (i, &chunks) in stats.worker_chunks.iter().enumerate() {
        crate::metrics::gauge(&format!("pool.worker_chunks.{i}")).set(chunks as i64);
    }
}

/// The scratch-arena counters as one JSON object (cumulative totals).
pub fn arena_stats_json() -> Json {
    let stats = tasfar_nn::scratch::stats();
    Json::obj(vec![
        ("checkouts", Json::UInt(stats.checkouts)),
        ("reuses", Json::UInt(stats.reuses)),
        ("bytes_peak", Json::UInt(stats.bytes_peak)),
    ])
}

/// Mirrors the scratch-arena counters ([`tasfar_nn::scratch::stats`]) into
/// the metrics registry as `arena.{checkouts,reuses,bytes_peak}` gauges, so
/// a [`crate::metrics::snapshot`] shows how well the hot paths reuse their
/// buffers.
pub fn sync_arena_metrics() {
    let stats = tasfar_nn::scratch::stats();
    crate::metrics::gauge("arena.checkouts").set(stats.checkouts as i64);
    crate::metrics::gauge("arena.reuses").set(stats.reuses as i64);
    crate::metrics::gauge("arena.bytes_peak").set(stats.bytes_peak as i64);
}

/// The compute-backend dispatch counters as one JSON object: the active
/// backend plus cumulative kernel dispatches served by each
/// ([`tasfar_nn::backend::stats`]).
pub fn backend_stats_json() -> Json {
    let stats = tasfar_nn::backend::stats();
    Json::obj(vec![
        (
            "active",
            Json::from(tasfar_nn::backend::active_kind().name()),
        ),
        ("naive_calls", Json::UInt(stats.naive_calls)),
        ("blocked_calls", Json::UInt(stats.blocked_calls)),
    ])
}

/// Mirrors the compute-backend dispatch counters into the metrics registry
/// as `backend.{naive,blocked}.calls` gauges, so traces attribute kernel
/// time to the backend that actually ran (the PR 3 pool-stats pattern).
pub fn sync_backend_metrics() {
    let stats = tasfar_nn::backend::stats();
    crate::metrics::gauge("backend.naive.calls").set(stats.naive_calls as i64);
    crate::metrics::gauge("backend.blocked.calls").set(stats.blocked_calls as i64);
}

/// The adapter-layer gauges as one JSON object: the active mode plus the
/// footprint of the most recent [`tasfar_nn::adapter::enable_adapters`]
/// call ([`tasfar_nn::adapter::stats`]).
pub fn adapter_stats_json() -> Json {
    let stats = tasfar_nn::adapter::stats();
    Json::obj(vec![
        ("mode", Json::Str(tasfar_nn::adapter::active_mode().name())),
        ("rank", Json::UInt(stats.rank)),
        ("layers", Json::UInt(stats.layers)),
        ("params", Json::UInt(stats.params)),
        ("bytes", Json::UInt(stats.bytes)),
    ])
}

/// Mirrors the adapter gauges ([`tasfar_nn::adapter::stats`]) into the
/// metrics registry as `adapter.{rank,layers,params,bytes}`, so a
/// [`crate::metrics::snapshot`] records the per-user delta footprint
/// alongside the backend and pool counters.
pub fn sync_adapter_metrics() {
    let stats = tasfar_nn::adapter::stats();
    crate::metrics::gauge("adapter.rank").set(stats.rank as i64);
    crate::metrics::gauge("adapter.layers").set(stats.layers as i64);
    crate::metrics::gauge("adapter.params").set(stats.params as i64);
    crate::metrics::gauge("adapter.bytes").set(stats.bytes as i64);
}

/// Emits an `adapter_layer` event carrying [`adapter_stats_json`] and
/// refreshes the adapter gauges. A no-op record-wise when tracing is
/// disabled (the gauges still update).
pub fn emit_adapter_event() {
    sync_adapter_metrics();
    if !crate::enabled() {
        return;
    }
    crate::span::emit_record(
        "event",
        "adapter_layer",
        vec![("adapter", adapter_stats_json())],
    );
}

/// Emits a `parallel_pool` event carrying [`pool_stats_json`] and refreshes
/// the pool gauges. A no-op record-wise when tracing is disabled (the gauges
/// still update).
pub fn emit_pool_event() {
    sync_pool_metrics();
    if !crate::enabled() {
        return;
    }
    crate::span::emit_record("event", "parallel_pool", vec![("pool", pool_stats_json())]);
}

/// The physical CPU count of the host.
///
/// `available_parallelism` reflects cgroup/affinity limits, which is the
/// wrong number for a benchmark provenance record; take the max of it and
/// the `/proc/cpuinfo` processor count so the recorded value is the real
/// host width wherever `/proc` exists, with a sane fallback elsewhere.
pub fn host_cpus() -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .map(|text| {
            text.lines()
                .filter(|line| line.starts_with("processor"))
                .count()
        })
        .unwrap_or(0);
    available.max(cpuinfo).max(1)
}

/// Builds a run-manifest record (seed, thread count, build profile, host
/// width, plus caller-provided fields), emits it as a `"manifest"` trace
/// record when tracing is on, and returns it so callers can also print it or
/// write it next to their results.
pub fn emit_manifest(name: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("threads", parallel::current_threads().into()),
        ("host_cpus", host_cpus().into()),
        (
            "profile",
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
            .into(),
        ),
        (
            "tasfar_threads_env",
            match std::env::var("TASFAR_THREADS") {
                Ok(v) => Json::Str(v),
                Err(_) => Json::Null,
            },
        ),
    ];
    fields.extend(extra);
    if crate::enabled() {
        crate::span::emit_record("manifest", name, fields.clone());
    }
    let mut pairs: Vec<(&str, Json)> = vec![("name", name.into())];
    pairs.extend(fields);
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cpus_is_positive() {
        assert!(host_cpus() >= 1);
    }

    #[test]
    fn manifest_carries_configuration() {
        let manifest = emit_manifest("test_run", vec![("seed", 7u64.into())]);
        assert_eq!(
            manifest.field("name").unwrap().as_str().unwrap(),
            "test_run"
        );
        assert_eq!(manifest.field("seed").unwrap().as_u64().unwrap(), 7);
        assert!(manifest.field("threads").unwrap().as_u64().unwrap() >= 1);
        let profile = manifest.field("profile").unwrap().as_str().unwrap();
        assert!(profile == "debug" || profile == "release");
    }

    #[test]
    fn arena_metrics_mirror_scratch_stats() {
        // Touch the arena so the counters are non-trivially populated.
        tasfar_nn::scratch::with(|s| {
            let v = s.take_vec(64);
            s.give_vec(v);
            let v = s.take_vec(64);
            s.give_vec(v);
        });
        sync_arena_metrics();
        let stats = tasfar_nn::scratch::stats();
        assert_eq!(
            crate::metrics::gauge("arena.checkouts").get(),
            stats.checkouts as i64
        );
        let v = arena_stats_json();
        assert!(v.field("checkouts").unwrap().as_u64().unwrap() >= 2);
        assert!(v.field("bytes_peak").unwrap().as_u64().unwrap() >= 64 * 8);
    }

    #[test]
    fn backend_metrics_mirror_dispatch_counters() {
        // Drive at least one dispatch so the counters are populated.
        let x = tasfar_nn::tensor::Tensor::zeros(2, 2);
        let _ = x.matmul(&x);
        let before = tasfar_nn::backend::stats();
        assert!(before.naive_calls + before.blocked_calls >= 1);
        sync_backend_metrics();
        let mirrored = crate::metrics::gauge("backend.naive.calls").get()
            + crate::metrics::gauge("backend.blocked.calls").get();
        assert!(mirrored >= (before.naive_calls + before.blocked_calls) as i64);
        let v = backend_stats_json();
        let active = v.field("active").unwrap().as_str().unwrap().to_string();
        assert!(active == "naive" || active == "blocked");
        assert!(v.field("naive_calls").unwrap().as_u64().is_ok());
        assert!(v.field("blocked_calls").unwrap().as_u64().is_ok());
    }

    #[test]
    fn adapter_metrics_mirror_adapter_stats() {
        use tasfar_nn::init::Init;
        use tasfar_nn::layers::{Dense, Sequential};
        let mut rng = tasfar_nn::rng::Rng::new(9);
        let mut model = Sequential::new().add(Dense::new(6, 12, Init::XavierUniform, &mut rng));
        tasfar_nn::adapter::enable_adapters(
            &mut model,
            &tasfar_nn::adapter::AdapterConfig::rank(3),
            &mut rng,
        );
        sync_adapter_metrics();
        let stats = tasfar_nn::adapter::stats();
        assert_eq!(stats.rank, 3);
        assert_eq!(
            crate::metrics::gauge("adapter.params").get(),
            stats.params as i64
        );
        assert_eq!(
            crate::metrics::gauge("adapter.bytes").get(),
            stats.bytes as i64
        );
        let v = adapter_stats_json();
        assert_eq!(v.field("rank").unwrap().as_u64().unwrap(), 3);
        assert_eq!(v.field("layers").unwrap().as_u64().unwrap(), 1);
        // down (6×3) + up (3×12) = 54 scalars.
        assert_eq!(v.field("params").unwrap().as_u64().unwrap(), 54);
        assert_eq!(v.field("bytes").unwrap().as_u64().unwrap(), 54 * 8);
    }

    #[test]
    fn pool_stats_json_shape() {
        let v = pool_stats_json();
        assert!(v.field("chunks_total").unwrap().as_u64().is_ok());
        assert!(v.field("worker_chunks").unwrap().as_arr().is_ok());
    }

    #[test]
    fn non_finite_numbers_serialise_as_strings() {
        assert_eq!(num(f64::NAN).to_string(), "\"NaN\"");
        assert_eq!(num(1.5), Json::Num(1.5));
    }
}
