//! Augmentation-based source-free UDA (the paper's "AUGfree" comparison,
//! after Xiong et al., *Source Data-free Domain Adaptation of Object
//! Detector through Domain-specific Perturbation*).
//!
//! The idea: if the domain gap is *known*, it can be simulated by data
//! augmentation, and the model can be trained to produce the same output on
//! clean and augmented target inputs — extracting gap-invariant features.
//! Following the paper's experimental setup, the augmentation is *variance
//! perturbation* (per-feature noise scaled to the batch standard
//! deviation), and the training signal is self-distillation: the frozen
//! source model's predictions on the clean inputs supervise the adapting
//! model on perturbed inputs.
//!
//! The scheme is source-free but needs the simulated gap to actually match
//! the real one; the paper finds its gains inconsistent across users and
//! near zero on crowd counting, which our experiments reproduce.

use crate::common::{validate_target, zero_grad, BaselineConfig, DomainAdapter};
use tasfar_core::error::AdaptError;
use tasfar_data::Dataset;
use tasfar_nn::layers::{Layer, Mode};
use tasfar_nn::loss::Loss;
use tasfar_nn::model::SplitRegressor;
use tasfar_nn::optim::{Adam, Optimizer};
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// The AUGfree adapter.
#[derive(Debug, Clone)]
pub struct AugfreeAdapter {
    /// Shared training hyper-parameters.
    pub config: BaselineConfig,
    /// Perturbation strength as a fraction of each feature's batch std.
    pub perturbation: f64,
}

impl AugfreeAdapter {
    /// An adapter with the given config and perturbation strength.
    ///
    /// # Panics
    /// Panics if `perturbation` is negative.
    pub fn new(config: BaselineConfig, perturbation: f64) -> Self {
        assert!(
            perturbation >= 0.0,
            "AugfreeAdapter: perturbation must be non-negative"
        );
        AugfreeAdapter {
            config,
            perturbation,
        }
    }

    /// Variance perturbation: adds per-feature Gaussian noise scaled to the
    /// feature's standard deviation over the batch.
    pub fn augment(&self, x: &Tensor, feature_std: &[f64], rng: &mut Rng) -> Tensor {
        assert_eq!(x.cols(), feature_std.len(), "augment: std length mismatch");
        let mut out = x.clone();
        for row in out.as_mut_slice().chunks_exact_mut(x.cols().max(1)) {
            for (v, &s) in row.iter_mut().zip(feature_std) {
                *v += rng.gaussian(0.0, self.perturbation * s);
            }
        }
        out
    }
}

impl<M: SplitRegressor> DomainAdapter<M> for AugfreeAdapter {
    fn name(&self) -> &'static str {
        "AUGfree"
    }

    fn requires_source(&self) -> bool {
        false
    }

    fn adapt(
        &self,
        model: &mut M,
        _source: Option<&Dataset>,
        target_x: &Tensor,
        loss: &dyn Loss,
    ) -> Result<(), AdaptError> {
        validate_target(target_x, 1)?;
        let mut span = tasfar_obs::span("baseline.adapt");
        span.field("scheme", "AUGfree");
        span.field("target_rows", target_x.rows());
        tasfar_obs::metrics::counter("baseline.adapts").incr();
        let cfg = &self.config;
        let mut rng = Rng::new(cfg.seed);
        // AUGfree trains end-to-end (no feature/head split), so take the
        // whole model out as a single trainable layer; its clone is the
        // frozen teacher providing the distillation targets.
        let mut student = model.take_whole();
        let mut teacher = student.clone();
        let teacher_pred = teacher.forward(target_x, Mode::Eval);
        let feature_std: Vec<f64> = target_x.var_rows().into_iter().map(f64::sqrt).collect();

        let mut opt = Adam::new(cfg.learning_rate);
        let n = target_x.rows();
        let batch = cfg.batch_size.min(n).max(1);
        let steps_per_epoch = (n / batch).max(1);

        for _ in 0..cfg.epochs {
            for _ in 0..steps_per_epoch {
                let idx: Vec<usize> = (0..batch).map(|_| rng.below(n)).collect();
                let xb = target_x.select_rows(&idx);
                let yb = teacher_pred.select_rows(&idx);
                let xb_aug = self.augment(&xb, &feature_std, &mut rng);

                zero_grad(&mut student);
                let pred = student.forward(&xb_aug, cfg.train_mode);
                let grad = loss.grad(&pred, &yb, None);
                student.backward(&grad);
                opt.step(&mut student.params_mut());
            }
        }
        model.restore_whole(student);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_core::metrics;
    use tasfar_nn::init::Init;
    use tasfar_nn::layers::{Dense, Relu, Sequential};
    use tasfar_nn::loss::Mse;
    use tasfar_nn::train::{fit, TrainConfig};

    #[test]
    fn augment_preserves_shape_and_scales_with_strength() {
        let mut rng = Rng::new(1);
        let x = Tensor::rand_normal(64, 3, 0.0, 1.0, &mut rng);
        let stds = vec![1.0; 3];
        let weak = AugfreeAdapter::new(BaselineConfig::default(), 0.05);
        let strong = AugfreeAdapter::new(BaselineConfig::default(), 0.8);
        let xw = weak.augment(&x, &stds, &mut rng);
        let xs = strong.augment(&x, &stds, &mut rng);
        assert_eq!(xw.shape(), x.shape());
        let dev_w = xw.sub(&x).frobenius_norm();
        let dev_s = xs.sub(&x).frobenius_norm();
        assert!(
            dev_s > 5.0 * dev_w,
            "stronger perturbation must move inputs more"
        );
    }

    #[test]
    fn zero_perturbation_is_identity_augmentation() {
        let mut rng = Rng::new(2);
        let x = Tensor::rand_normal(8, 2, 0.0, 1.0, &mut rng);
        let a = AugfreeAdapter::new(BaselineConfig::default(), 0.0);
        assert_eq!(a.augment(&x, &[1.0, 1.0], &mut rng), x);
    }

    #[test]
    fn adapter_helps_when_the_gap_is_noise_like() {
        // The gap AUGfree is designed for: target inputs = source inputs +
        // feature noise. Training for invariance against variance
        // perturbation smooths the model in exactly that direction.
        let mut rng = Rng::new(3);
        let n = 300;
        let xs = Tensor::rand_uniform(n, 2, -1.0, 1.0, &mut rng);
        let ys = Tensor::from_fn(n, 1, |r, _| xs.get(r, 0) + 0.5 * xs.get(r, 1));
        let mut model = Sequential::new()
            .add(Dense::new(2, 24, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(24, 1, Init::XavierUniform, &mut rng));
        let mut opt = Adam::new(5e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &xs,
            &ys,
            None,
            &TrainConfig {
                epochs: 150,
                batch_size: 32,
                ..Default::default()
            },
        );
        // Noisy target inputs, same function.
        let clean = Tensor::rand_uniform(n, 2, -1.0, 1.0, &mut rng);
        let yt = Tensor::from_fn(n, 1, |r, _| clean.get(r, 0) + 0.5 * clean.get(r, 1));
        let xt = clean.map(|v| v); // labels defined on clean values
        let mut noisy = xt.clone();
        let mut noise_rng = Rng::new(9);
        noisy.map_assign(|v| v); // keep shape clarity
        for v in noisy.as_mut_slice() {
            *v += noise_rng.gaussian(0.0, 0.3);
        }

        let before = metrics::mse(&model.predict(&noisy), &yt);
        let adapter = AugfreeAdapter::new(
            BaselineConfig {
                epochs: 40,
                learning_rate: 1e-3,
                ..Default::default()
            },
            0.3,
        );
        adapter
            .adapt(&mut model, None, &noisy, &Mse)
            .expect("AUGfree adaptation succeeds on a healthy batch");
        let after = metrics::mse(&model.predict(&noisy), &yt);
        assert!(
            after <= before * 1.05,
            "AUGfree must not degrade noticeably on its own gap class: {before:.4} → {after:.4}"
        );
    }

    #[test]
    fn adapter_is_roughly_neutral_on_label_shift() {
        // A *label*-distribution gap (what TASFAR exploits) is invisible to
        // augmentation consistency: AUGfree neither fixes nor breaks much.
        let mut rng = Rng::new(4);
        let n = 300;
        let xs = Tensor::rand_uniform(n, 1, -1.0, 1.0, &mut rng);
        let ys = xs.clone();
        let mut model = Sequential::new()
            .add(Dense::new(1, 16, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(16, 1, Init::XavierUniform, &mut rng));
        let mut opt = Adam::new(5e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &xs,
            &ys,
            None,
            &TrainConfig {
                epochs: 100,
                batch_size: 32,
                ..Default::default()
            },
        );
        let xt = Tensor::rand_uniform(n, 1, 0.5, 0.7, &mut rng);
        let yt = xt.clone();
        let before = metrics::mse(&model.predict(&xt), &yt);
        let adapter = AugfreeAdapter::new(
            BaselineConfig {
                epochs: 30,
                learning_rate: 5e-4,
                ..Default::default()
            },
            0.2,
        );
        adapter
            .adapt(&mut model, None, &xt, &Mse)
            .expect("AUGfree adaptation succeeds on a healthy batch");
        let after = metrics::mse(&model.predict(&xt), &yt);
        assert!(
            (after - before).abs() < 0.05 + before,
            "AUGfree should be roughly neutral here: {before:.5} → {after:.5}"
        );
    }
}
