//! Adversarial source-based UDA (the paper's "ADV" comparison, after Tzeng
//! et al., *Adversarial Discriminative Domain Adaptation*).
//!
//! A domain discriminator learns to tell source features from target
//! features; the feature extractor receives the *reversed* discriminator
//! gradient (DANN-style gradient reversal), pushing the two feature
//! distributions together while the head keeps fitting the supervised source
//! loss. Like MMD, this is source-based and serves as an upper reference.

use crate::common::{
    bce_with_logits, rejoin, require_source, split_model, validate_target, zero_grad,
    BaselineConfig, DomainAdapter,
};
use tasfar_core::error::AdaptError;
use tasfar_data::Dataset;
use tasfar_nn::init::Init;
use tasfar_nn::layers::{Dense, Layer, Mode, Relu, Sequential};
use tasfar_nn::loss::Loss;
use tasfar_nn::model::SplitRegressor;
use tasfar_nn::optim::{Adam, Optimizer};
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// The adversarial adapter.
#[derive(Debug, Clone)]
pub struct AdvAdapter {
    /// Shared training hyper-parameters.
    pub config: BaselineConfig,
    /// Gradient-reversal strength λ.
    pub lambda: f64,
    /// Hidden width of the domain discriminator.
    pub disc_hidden: usize,
}

impl AdvAdapter {
    /// An adapter with the given config, reversal strength, and
    /// discriminator width.
    pub fn new(config: BaselineConfig, lambda: f64, disc_hidden: usize) -> Self {
        assert!(lambda >= 0.0, "AdvAdapter: lambda must be non-negative");
        assert!(disc_hidden > 0, "AdvAdapter: disc_hidden must be positive");
        AdvAdapter {
            config,
            lambda,
            disc_hidden,
        }
    }

    fn build_discriminator(&self, feature_dim: usize, rng: &mut Rng) -> Sequential {
        Sequential::new()
            .add(Dense::new(
                feature_dim,
                self.disc_hidden,
                Init::HeNormal,
                rng,
            ))
            .add(Relu::new())
            .add(Dense::new(self.disc_hidden, 1, Init::XavierUniform, rng))
    }
}

impl<M: SplitRegressor> DomainAdapter<M> for AdvAdapter {
    fn name(&self) -> &'static str {
        "ADV"
    }

    fn requires_source(&self) -> bool {
        true
    }

    fn adapt(
        &self,
        model: &mut M,
        source: Option<&Dataset>,
        target_x: &Tensor,
        loss: &dyn Loss,
    ) -> Result<(), AdaptError> {
        let source = require_source(source, "adv")?;
        // The discriminator needs ≥ 2 samples per domain.
        validate_target(target_x, 2)?;
        let mut span = tasfar_obs::span("baseline.adapt");
        span.field("scheme", "ADV");
        span.field("target_rows", target_x.rows());
        tasfar_obs::metrics::counter("baseline.adapts").incr();
        let cfg = &self.config;
        let (mut features, mut head) = split_model(model, cfg.split_at);
        let mut rng = Rng::new(cfg.seed);
        let feature_dim = {
            // Probe the feature width with a single sample.
            let probe = features.forward(&source.x.slice_rows(0, 1), Mode::Eval);
            probe.cols()
        };
        let mut discriminator = self.build_discriminator(feature_dim, &mut rng);

        let mut opt_feat = Adam::new(cfg.learning_rate);
        let mut opt_head = Adam::new(cfg.learning_rate);
        let mut opt_disc = Adam::new(cfg.learning_rate * 2.0);

        let ns = source.len();
        let nt = target_x.rows();
        // One "epoch" is one pass over the target set; source batches are
        // drawn with replacement. This keeps the adaptation cost driven by
        // the (small) target set rather than the large source dataset.
        let steps_per_epoch = (nt / cfg.batch_size).max(1);

        for _ in 0..cfg.epochs {
            for _ in 0..steps_per_epoch {
                let src_idx: Vec<usize> =
                    (0..cfg.batch_size.min(ns)).map(|_| rng.below(ns)).collect();
                let tgt_idx: Vec<usize> =
                    (0..cfg.batch_size.min(nt)).map(|_| rng.below(nt)).collect();
                let xs = source.x.select_rows(&src_idx);
                let ys = source.y.select_rows(&src_idx);
                let xt = target_x.select_rows(&tgt_idx);
                let nsb = xs.rows();

                // --- 1. discriminator step (features frozen) -------------
                let z = features.forward(&Tensor::vstack(&[&xs, &xt]), cfg.train_mode);
                let mut domain_labels = vec![1.0; nsb];
                domain_labels.extend(vec![0.0; z.rows() - nsb]);
                let logits = discriminator.forward(&z, cfg.train_mode);
                let (_, g_logits) = bce_with_logits(&logits, &domain_labels);
                discriminator.zero_grad();
                let g_z_disc = discriminator.backward(&g_logits);
                opt_disc.step(&mut discriminator.params_mut());

                // --- 2. feature/head step with reversed domain gradient --
                // The discriminator just moved, but its gradient w.r.t. the
                // features (g_z_disc) is a serviceable confusion signal; the
                // reversal pushes features toward the decision boundary.
                let fs = z.slice_rows(0, nsb);
                let pred = head.forward(&fs, cfg.train_mode);
                let g_task = loss.grad(&pred, &ys, None);
                zero_grad(&mut features);
                zero_grad(&mut head);
                let g_fs_task = head.backward(&g_task);

                let mut g_z = g_z_disc.scale(-self.lambda); // gradient reversal
                for (row, g_extra) in g_z
                    .as_mut_slice()
                    .chunks_exact_mut(feature_dim)
                    .take(nsb)
                    .zip(g_fs_task.iter_rows())
                {
                    for (g, &e) in row.iter_mut().zip(g_extra) {
                        *g += e;
                    }
                }
                features.backward(&g_z);
                opt_feat.step(&mut features.params_mut());
                opt_head.step(&mut head.params_mut());
            }
        }
        rejoin(model, features, head);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_core::metrics;
    use tasfar_nn::loss::Mse;
    use tasfar_nn::train::{fit, TrainConfig};

    fn pretrained_setup(rng: &mut Rng) -> (Sequential, Dataset, Tensor, Tensor) {
        // Source: y = x on [−1, 1]. Target: inputs shifted by +2.
        let n = 200;
        let xs = Tensor::rand_uniform(n, 1, -1.0, 1.0, rng);
        let ys = xs.clone();
        let source = Dataset::new(xs, ys);
        let xt = Tensor::rand_uniform(n, 1, -1.0, 1.0, rng).map(|v| v + 2.0);
        let yt = xt.map(|v| v - 2.0);
        let mut model = Sequential::new()
            .add(Dense::new(1, 16, Init::HeNormal, rng))
            .add(Relu::new())
            .add(Dense::new(16, 16, Init::HeNormal, rng))
            .add(Relu::new())
            .add(Dense::new(16, 1, Init::XavierUniform, rng));
        let mut opt = Adam::new(5e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &source.x,
            &source.y,
            None,
            &TrainConfig {
                epochs: 120,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, source, xt, yt)
    }

    #[test]
    fn adapter_reduces_target_error_on_shifted_domain() {
        let mut rng = Rng::new(1);
        let (mut model, source, xt, yt) = pretrained_setup(&mut rng);
        let before = metrics::mse(&model.predict(&xt), &yt);
        let adapter = AdvAdapter::new(
            BaselineConfig {
                split_at: 4,
                epochs: 40,
                learning_rate: 1e-3,
                ..Default::default()
            },
            0.3,
            16,
        );
        adapter
            .adapt(&mut model, Some(&source), &xt, &Mse)
            .expect("ADV adaptation with source data succeeds");
        let after = metrics::mse(&model.predict(&xt), &yt);
        assert!(
            after < before,
            "ADV adaptation should reduce target MSE: {before:.4} → {after:.4}"
        );
    }

    #[test]
    fn source_accuracy_is_retained() {
        let mut rng = Rng::new(2);
        let (mut model, source, xt, _) = pretrained_setup(&mut rng);
        let adapter = AdvAdapter::new(
            BaselineConfig {
                split_at: 4,
                epochs: 30,
                learning_rate: 1e-3,
                ..Default::default()
            },
            0.3,
            16,
        );
        adapter
            .adapt(&mut model, Some(&source), &xt, &Mse)
            .expect("ADV adaptation with source data succeeds");
        let src_mse = metrics::mse(&model.predict(&source.x), &source.y);
        assert!(
            src_mse < 0.1,
            "the supervised source loss keeps source accuracy, got MSE {src_mse:.4}"
        );
    }

    #[test]
    fn missing_source_is_a_typed_error() {
        use tasfar_core::error::ErrorKind;
        let mut rng = Rng::new(3);
        let mut model = Sequential::new()
            .add(Dense::new(1, 4, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(4, 1, Init::XavierUniform, &mut rng));
        let adapter = AdvAdapter::new(BaselineConfig::default(), 0.3, 8);
        let err = adapter
            .adapt(&mut model, None, &Tensor::zeros(4, 1), &Mse)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::MissingSource { baseline: "adv" });
        assert!(!err.recoverable());
    }
}
