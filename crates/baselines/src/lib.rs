//! # tasfar-baselines — the comparison schemes of the TASFAR evaluation
//!
//! Implementations of the four adaptation schemes the paper compares TASFAR
//! against, sharing the [`common::DomainAdapter`] interface so the benchmark
//! harness can sweep them uniformly:
//!
//! | Scheme | Source data? | Mechanism |
//! |---|---|---|
//! | [`mmd::MmdAdapter`] | required | RBF-kernel MMD feature alignment (Long et al.) |
//! | [`adv::AdvAdapter`] | required | domain discriminator + gradient reversal (Tzeng et al.) |
//! | [`datafree::DatafreeAdapter`] | stored histograms only | soft feature-histogram restoration (Eastwood et al.) |
//! | [`augfree::AugfreeAdapter`] | none | variance-perturbation consistency (Xiong et al.) |
//!
//! The source-based schemes are the paper's upper reference ("expectedly the
//! best performance due to the availability of source dataset"); the
//! source-free schemes are the direct competitors TASFAR outperforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adv;
pub mod augfree;
pub mod common;
pub mod datafree;
pub mod mmd;

pub use adv::AdvAdapter;
pub use augfree::AugfreeAdapter;
pub use common::{BaselineConfig, DomainAdapter};
pub use datafree::{record_source_stats, DatafreeAdapter};
pub use mmd::MmdAdapter;
