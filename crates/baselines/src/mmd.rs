//! MMD-based source-based UDA (the paper's "MMD" comparison, after Long et
//! al., *Deep Transfer Learning with Joint Adaptation Networks*).
//!
//! Jointly minimises the supervised source loss and the squared maximum mean
//! discrepancy between source and target features under an RBF kernel:
//!
//! ```text
//! L = L_task(head(φ(x_s)), y_s) + λ · MMD²(φ(x_s), φ(x_t))
//! ```
//!
//! This is *source-based*: the source dataset must be present at adaptation
//! time — the storage/privacy cost TASFAR exists to avoid. It serves as the
//! upper-reference comparison in every experiment.

use crate::common::{
    rejoin, require_source, split_model, validate_target, zero_grad, BaselineConfig, DomainAdapter,
};
use tasfar_core::error::AdaptError;
use tasfar_data::Dataset;
use tasfar_nn::layers::Layer;
use tasfar_nn::loss::Loss;
use tasfar_nn::model::SplitRegressor;
use tasfar_nn::optim::{Adam, Optimizer};
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// The MMD adapter.
#[derive(Debug, Clone)]
pub struct MmdAdapter {
    /// Shared training hyper-parameters.
    pub config: BaselineConfig,
    /// Weight λ of the MMD² term.
    pub lambda: f64,
}

impl MmdAdapter {
    /// An adapter with the given config and MMD weight.
    pub fn new(config: BaselineConfig, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "MmdAdapter: lambda must be non-negative");
        MmdAdapter { config, lambda }
    }
}

/// Squared MMD between two feature batches under a single-bandwidth RBF
/// kernel (median heuristic), together with its gradients with respect to
/// each batch. Returns `(mmd², grad_a, grad_b)`.
///
/// The bandwidth is treated as a constant when differentiating — standard
/// practice (the median heuristic is re-evaluated per batch but not
/// back-propagated through).
pub fn mmd_sq_with_grad(a: &Tensor, b: &Tensor) -> (f64, Tensor, Tensor) {
    let gamma_sq = median_sq_distance(a, b).max(1e-9);
    mmd_sq_with_grad_fixed(a, b, gamma_sq)
}

/// [`mmd_sq_with_grad`] with an explicit RBF bandwidth `γ²`.
///
/// # Panics
/// Panics if widths disagree, either batch has fewer than 2 rows, or
/// `gamma_sq <= 0`.
pub fn mmd_sq_with_grad_fixed(a: &Tensor, b: &Tensor, gamma_sq: f64) -> (f64, Tensor, Tensor) {
    assert_eq!(a.cols(), b.cols(), "mmd: feature widths differ");
    assert!(
        a.rows() > 1 && b.rows() > 1,
        "mmd: need ≥2 samples per domain"
    );
    assert!(gamma_sq > 0.0, "mmd: bandwidth must be positive");

    let (na, nb) = (a.rows() as f64, b.rows() as f64);
    let mut value = 0.0;
    let mut grad_a = Tensor::zeros(a.rows(), a.cols());
    let mut grad_b = Tensor::zeros(b.rows(), b.cols());

    // k(x, y) = exp(−‖x−y‖² / γ²);  ∂k/∂x = k · 2(y−x)/γ².
    let mut accumulate =
        |xs: &Tensor, ys: &Tensor, gx: &mut Tensor, gy: Option<&mut Tensor>, coeff: f64| {
            let mut gy = gy;
            for (i, xi) in xs.iter_rows().enumerate() {
                for (j, yj) in ys.iter_rows().enumerate() {
                    let d2: f64 = xi.iter().zip(yj).map(|(&p, &q)| (p - q).powi(2)).sum();
                    let k = (-d2 / gamma_sq).exp();
                    value += coeff * k;
                    let scale = coeff * k * 2.0 / gamma_sq;
                    {
                        let gx_row = gx.row_mut(i);
                        for ((g, &p), &q) in gx_row.iter_mut().zip(xi).zip(yj) {
                            *g += scale * (q - p);
                        }
                    }
                    if let Some(gy) = gy.as_deref_mut() {
                        let gy_row = gy.row_mut(j);
                        for ((g, &q), &p) in gy_row.iter_mut().zip(yj).zip(xi) {
                            *g += scale * (p - q);
                        }
                    }
                }
            }
        };

    accumulate(a, &a.clone(), &mut grad_a, None, 1.0 / (na * na));
    // Within-domain terms: each ordered pair is visited once per side, and
    // by symmetry the gradient of the (i,j) term w.r.t. xi equals that of
    // (j,i), so a factor 2 replaces the missing `gy` accumulation.
    grad_a.scale_assign(2.0);
    let mut grad_b_within = Tensor::zeros(b.rows(), b.cols());
    accumulate(b, &b.clone(), &mut grad_b_within, None, 1.0 / (nb * nb));
    grad_b_within.scale_assign(2.0);
    grad_b.add_assign(&grad_b_within);
    accumulate(a, b, &mut grad_a, Some(&mut grad_b), -2.0 / (na * nb));

    (value, grad_a, grad_b)
}

/// Median squared pairwise distance between the two batches (the RBF
/// bandwidth heuristic).
fn median_sq_distance(a: &Tensor, b: &Tensor) -> f64 {
    let mut d2s = Vec::with_capacity(a.rows() * b.rows());
    for xi in a.iter_rows() {
        for yj in b.iter_rows() {
            d2s.push(xi.iter().zip(yj).map(|(&p, &q)| (p - q).powi(2)).sum());
        }
    }
    d2s.sort_by(f64::total_cmp);
    d2s[d2s.len() / 2]
}

impl<M: SplitRegressor> DomainAdapter<M> for MmdAdapter {
    fn name(&self) -> &'static str {
        "MMD"
    }

    fn requires_source(&self) -> bool {
        true
    }

    fn adapt(
        &self,
        model: &mut M,
        source: Option<&Dataset>,
        target_x: &Tensor,
        loss: &dyn Loss,
    ) -> Result<(), AdaptError> {
        let source = require_source(source, "mmd")?;
        // The MMD estimator needs ≥ 2 samples per domain.
        validate_target(target_x, 2)?;
        let mut span = tasfar_obs::span("baseline.adapt");
        span.field("scheme", "MMD");
        span.field("target_rows", target_x.rows());
        tasfar_obs::metrics::counter("baseline.adapts").incr();
        let cfg = &self.config;
        let (mut features, mut head) = split_model(model, cfg.split_at);
        let mut opt_feat = Adam::new(cfg.learning_rate);
        let mut opt_head = Adam::new(cfg.learning_rate);
        let mut rng = Rng::new(cfg.seed);

        let ns = source.len();
        let nt = target_x.rows();
        // One "epoch" is one pass over the target set; source batches are
        // drawn with replacement. This keeps the adaptation cost driven by
        // the (small) target set rather than the large source dataset.
        let steps_per_epoch = (nt / cfg.batch_size).max(1);

        for _ in 0..cfg.epochs {
            for _ in 0..steps_per_epoch {
                let src_idx: Vec<usize> =
                    (0..cfg.batch_size.min(ns)).map(|_| rng.below(ns)).collect();
                let tgt_idx: Vec<usize> =
                    (0..cfg.batch_size.min(nt)).map(|_| rng.below(nt)).collect();
                let xs = source.x.select_rows(&src_idx);
                let ys = source.y.select_rows(&src_idx);
                let xt = target_x.select_rows(&tgt_idx);
                let nsb = xs.rows();

                // One concatenated pass keeps the layer caches coherent.
                let z = features.forward(&Tensor::vstack(&[&xs, &xt]), cfg.train_mode);
                let fs = z.slice_rows(0, nsb);
                let ft = z.slice_rows(nsb, z.rows());

                let pred = head.forward(&fs, cfg.train_mode);
                let g_task = loss.grad(&pred, &ys, None);
                zero_grad(&mut features);
                zero_grad(&mut head);
                let g_fs_task = head.backward(&g_task);

                let (_, g_fs_mmd, g_ft_mmd) = mmd_sq_with_grad(&fs, &ft);
                let mut g_fs = g_fs_task;
                g_fs.axpy(self.lambda, &g_fs_mmd);
                let g_ft = g_ft_mmd.scale(self.lambda);

                let g_z = Tensor::vstack(&[&g_fs, &g_ft]);
                features.backward(&g_z);
                opt_feat.step(&mut features.params_mut());
                opt_head.step(&mut head.params_mut());
            }
        }
        rejoin(model, features, head);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_nn::init::Init;
    use tasfar_nn::layers::{Dense, Relu, Sequential};

    #[test]
    fn mmd_of_identical_batches_is_zero() {
        let mut rng = Rng::new(1);
        let a = Tensor::rand_normal(16, 4, 0.0, 1.0, &mut rng);
        let (v, ga, gb) = mmd_sq_with_grad(&a, &a);
        assert!(v.abs() < 1e-9, "mmd² {v}");
        // Gradients of a symmetric configuration cancel.
        assert!(ga.add(&gb).frobenius_norm() < 1e-9);
    }

    #[test]
    fn mmd_detects_mean_shift() {
        let mut rng = Rng::new(2);
        let a = Tensor::rand_normal(32, 3, 0.0, 1.0, &mut rng);
        let b_near = Tensor::rand_normal(32, 3, 0.3, 1.0, &mut rng);
        let b_far = Tensor::rand_normal(32, 3, 3.0, 1.0, &mut rng);
        let (v_near, _, _) = mmd_sq_with_grad(&a, &b_near);
        let (v_far, _, _) = mmd_sq_with_grad(&a, &b_far);
        assert!(
            v_far > v_near,
            "mmd should grow with the shift: {v_far} vs {v_near}"
        );
        assert!(v_near > 0.0);
    }

    #[test]
    fn mmd_gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let a = Tensor::rand_normal(5, 2, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(6, 2, 0.5, 1.0, &mut rng);
        // Fix the bandwidth so the analytic gradient (which treats γ as a
        // constant) is the exact derivative being probed.
        let gamma_sq = 1.7;
        let (_, ga, gb) = mmd_sq_with_grad_fixed(&a, &b, gamma_sq);
        let eps = 1e-6;
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let mut plus = a.clone();
                plus.set(r, c, a.get(r, c) + eps);
                let mut minus = a.clone();
                minus.set(r, c, a.get(r, c) - eps);
                let (vp, _, _) = mmd_sq_with_grad_fixed(&plus, &b, gamma_sq);
                let (vm, _, _) = mmd_sq_with_grad_fixed(&minus, &b, gamma_sq);
                let num = (vp - vm) / (2.0 * eps);
                assert!(
                    (num - ga.get(r, c)).abs() < 1e-5,
                    "grad_a ({r},{c}): numeric {num} vs {}",
                    ga.get(r, c)
                );
            }
        }
        for r in 0..b.rows() {
            for c in 0..b.cols() {
                let mut plus = b.clone();
                plus.set(r, c, b.get(r, c) + eps);
                let mut minus = b.clone();
                minus.set(r, c, b.get(r, c) - eps);
                let (vp, _, _) = mmd_sq_with_grad_fixed(&a, &plus, gamma_sq);
                let (vm, _, _) = mmd_sq_with_grad_fixed(&a, &minus, gamma_sq);
                let num = (vp - vm) / (2.0 * eps);
                assert!(
                    (num - gb.get(r, c)).abs() < 1e-5,
                    "grad_b ({r},{c}): numeric {num} vs {}",
                    gb.get(r, c)
                );
            }
        }
    }

    #[test]
    fn adapter_aligns_shifted_features() {
        // Source: y = x. Target inputs are shifted by +2; MMD training
        // should pull the target features back onto the source manifold and
        // reduce target error without target labels.
        let mut rng = Rng::new(4);
        let n = 200;
        let xs = Tensor::rand_uniform(n, 1, -1.0, 1.0, &mut rng);
        let ys = xs.clone();
        let source = Dataset::new(xs, ys);
        let xt = Tensor::rand_uniform(n, 1, -1.0, 1.0, &mut rng).map(|v| v + 2.0);
        let yt = xt.map(|v| v - 2.0); // the same function in the source frame

        let mut model = Sequential::new()
            .add(Dense::new(1, 16, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(16, 16, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(16, 1, Init::XavierUniform, &mut rng));
        // Pre-train on source.
        let mut opt = Adam::new(5e-3);
        let _ = tasfar_nn::train::fit(
            &mut model,
            &mut opt,
            &tasfar_nn::loss::Mse,
            &source.x,
            &source.y,
            None,
            &tasfar_nn::train::TrainConfig {
                epochs: 120,
                batch_size: 32,
                ..Default::default()
            },
        );
        let before = {
            let p = model.predict(&xt);
            tasfar_core::metrics::mse(&p, &yt)
        };
        let adapter = MmdAdapter::new(
            BaselineConfig {
                split_at: 4,
                epochs: 40,
                learning_rate: 1e-3,
                ..Default::default()
            },
            1.0,
        );
        adapter
            .adapt(&mut model, Some(&source), &xt, &tasfar_nn::loss::Mse)
            .expect("MMD adaptation with source data succeeds");
        let after = {
            let p = model.predict(&xt);
            tasfar_core::metrics::mse(&p, &yt)
        };
        assert!(
            after < before,
            "MMD adaptation should reduce target MSE: {before:.4} → {after:.4}"
        );
    }

    #[test]
    fn missing_source_is_a_typed_error() {
        use tasfar_core::error::ErrorKind;
        let mut rng = Rng::new(5);
        let mut model = Sequential::new()
            .add(Dense::new(1, 4, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(4, 1, Init::XavierUniform, &mut rng));
        let reference = model.clone();
        let adapter = MmdAdapter::new(BaselineConfig::default(), 1.0);
        let err = adapter
            .adapt(
                &mut model,
                None,
                &Tensor::zeros(4, 1),
                &tasfar_nn::loss::Mse,
            )
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::MissingSource { baseline: "mmd" });
        assert!(!err.recoverable(), "no retry can conjure source data");
        // Rejected before any training: model untouched.
        let probe = Tensor::zeros(2, 1);
        assert_eq!(
            model.predict(&probe).as_slice(),
            reference.clone().predict(&probe).as_slice()
        );
    }
}
