//! Feature-histogram alignment without source data (the paper's "Datafree"
//! comparison, after Eastwood et al., *Source-free Adaptation to Measurement
//! Shift via Bottom-up Feature Restoration*, ICLR 2022).
//!
//! At source time, each feature unit's marginal distribution is summarised
//! as a *soft histogram* — lightweight statistics, not data. At the target,
//! the feature extractor is fine-tuned so the target feature histograms
//! match the stored source histograms, with the regression head frozen. The
//! approach is source-free but, as the paper's experiments show, aligning
//! marginal feature statistics only repairs small "measurement-shift"-style
//! gaps — it carries no information about the target label distribution.

use crate::common::{
    rejoin, split_model, validate_target, zero_grad, BaselineConfig, DomainAdapter,
};
use tasfar_core::error::AdaptError;
use tasfar_data::Dataset;
use tasfar_nn::layers::{Layer, Mode};
use tasfar_nn::loss::Loss;
use tasfar_nn::model::SplitRegressor;
use tasfar_nn::optim::{Adam, Optimizer};
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// Differentiable soft histogram of one feature unit: Gaussian-kernel
/// binning over a fixed range.
#[derive(Debug, Clone)]
pub struct SoftHistogram {
    /// Bin centres.
    pub centers: Vec<f64>,
    /// Kernel bandwidth.
    pub bandwidth: f64,
}

impl SoftHistogram {
    /// A histogram with `bins` centres spanning `[lo, hi]`; the kernel
    /// bandwidth equals the bin spacing.
    ///
    /// # Panics
    /// Panics unless `bins >= 2` and `lo < hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 2, "SoftHistogram: need at least 2 bins");
        assert!(lo < hi, "SoftHistogram: lo must be below hi");
        let step = (hi - lo) / (bins - 1) as f64;
        SoftHistogram {
            centers: (0..bins).map(|b| lo + b as f64 * step).collect(),
            bandwidth: step,
        }
    }

    /// Kernel response of value `v` at bin `b` (unnormalised Gaussian).
    fn kernel(&self, v: f64, b: usize) -> f64 {
        let z = (v - self.centers[b]) / self.bandwidth;
        (-0.5 * z * z).exp()
    }

    /// The soft histogram of `values`: per-bin mean kernel response,
    /// normalised to sum to one.
    pub fn evaluate(&self, values: &[f64]) -> Vec<f64> {
        assert!(!values.is_empty(), "SoftHistogram: no values");
        let mut h = vec![0.0; self.centers.len()];
        for &v in values {
            for (b, hb) in h.iter_mut().enumerate() {
                *hb += self.kernel(v, b);
            }
        }
        let total: f64 = h.iter().sum();
        if total > 0.0 {
            for hb in &mut h {
                *hb /= total;
            }
        }
        h
    }
}

/// The stored source-side feature statistics (what ships with the model in
/// place of the source dataset).
#[derive(Debug, Clone)]
pub struct FeatureStats {
    /// One histogram spec per feature unit.
    pub specs: Vec<SoftHistogram>,
    /// The source histograms `q` per unit.
    pub histograms: Vec<Vec<f64>>,
}

/// Computes the source feature statistics (run before shipping the model).
///
/// # Panics
/// Panics if the source dataset is empty.
pub fn record_source_stats<M: SplitRegressor>(
    model: &mut M,
    source: &Dataset,
    split_at: usize,
    bins: usize,
) -> FeatureStats {
    assert!(!source.is_empty(), "record_source_stats: empty source");
    let (mut features, head) = split_model(model, split_at);
    let f = features.forward(&source.x, Mode::Eval);
    let mut specs = Vec::with_capacity(f.cols());
    let mut histograms = Vec::with_capacity(f.cols());
    for unit in 0..f.cols() {
        let lo = f.col_iter(unit).fold(f64::INFINITY, f64::min);
        let hi = f.col_iter(unit).fold(f64::NEG_INFINITY, f64::max);
        let spec = SoftHistogram::new(lo - 1e-6, hi.max(lo + 1e-3) + 1e-6, bins);
        let hist = spec.evaluate(&f.col(unit));
        specs.push(spec);
        histograms.push(hist);
    }
    rejoin(model, features, head);
    FeatureStats { specs, histograms }
}

/// The Datafree adapter: histogram-matching fine-tuning of the feature
/// extractor with a frozen head.
#[derive(Debug, Clone)]
pub struct DatafreeAdapter {
    /// Shared training hyper-parameters.
    pub config: BaselineConfig,
    /// The stored source statistics.
    pub stats: FeatureStats,
}

impl DatafreeAdapter {
    /// An adapter around previously recorded source statistics.
    pub fn new(config: BaselineConfig, stats: FeatureStats) -> Self {
        DatafreeAdapter { config, stats }
    }
}

/// Cross-entropy `−Σ_b q_b log p_b` of the target histogram `p` against the
/// stored source histogram `q`, plus its gradient with respect to each
/// contributing feature value.
fn histogram_loss_and_grad(
    spec: &SoftHistogram,
    source_hist: &[f64],
    values: &[f64],
) -> (f64, Vec<f64>) {
    let bins = spec.centers.len();
    // Unnormalised responses and their total.
    let mut responses = vec![0.0; bins];
    let mut per_value: Vec<Vec<f64>> = Vec::with_capacity(values.len());
    for &v in values {
        let mut row = Vec::with_capacity(bins);
        for (b, resp) in responses.iter_mut().enumerate() {
            let k = spec.kernel(v, b);
            *resp += k;
            row.push(k);
        }
        per_value.push(row);
    }
    let total: f64 = responses.iter().sum::<f64>().max(1e-12);
    let p: Vec<f64> = responses.iter().map(|r| (r / total).max(1e-12)).collect();
    let loss: f64 = source_hist
        .iter()
        .zip(&p)
        .map(|(&q, &pb)| -q * pb.ln())
        .sum();

    // dL/dv = Σ_b (−q_b/p_b) · dp_b/dv, with p_b = r_b / Σr:
    // dp_b/dv_i = (dk_{ib}/dv_i · total − r_b · Σ_b' dk_{ib'}/dv_i) / total².
    let mut grads = Vec::with_capacity(values.len());
    for (i, &v) in values.iter().enumerate() {
        // dk/dv for each bin.
        let dk: Vec<f64> = (0..bins)
            .map(|b| {
                let z = (v - spec.centers[b]) / spec.bandwidth;
                per_value[i][b] * (-z / spec.bandwidth)
            })
            .collect();
        let dk_sum: f64 = dk.iter().sum();
        let mut g = 0.0;
        for b in 0..bins {
            let dp = (dk[b] * total - responses[b] * dk_sum) / (total * total);
            g += -source_hist[b] / p[b] * dp;
        }
        grads.push(g);
    }
    (loss, grads)
}

impl<M: SplitRegressor> DomainAdapter<M> for DatafreeAdapter {
    fn name(&self) -> &'static str {
        "Datafree"
    }

    fn requires_source(&self) -> bool {
        false
    }

    fn adapt(
        &self,
        model: &mut M,
        _source: Option<&Dataset>,
        target_x: &Tensor,
        _loss: &dyn Loss,
    ) -> Result<(), AdaptError> {
        // Histogram matching needs ≥ 2 samples for a meaningful target
        // histogram.
        validate_target(target_x, 2)?;
        let mut span = tasfar_obs::span("baseline.adapt");
        span.field("scheme", "Datafree");
        span.field("target_rows", target_x.rows());
        tasfar_obs::metrics::counter("baseline.adapts").incr();
        let cfg = &self.config;
        let (mut features, head) = split_model(model, cfg.split_at);
        let mut opt = Adam::new(cfg.learning_rate);
        let mut rng = Rng::new(cfg.seed);
        let n = target_x.rows();
        let batch = cfg.batch_size.max(16).min(n);
        let steps_per_epoch = (n / batch).max(1);

        for _ in 0..cfg.epochs {
            for _ in 0..steps_per_epoch {
                let idx: Vec<usize> = (0..batch).map(|_| rng.below(n)).collect();
                let xb = target_x.select_rows(&idx);
                let f = features.forward(&xb, cfg.train_mode);
                let mut g_f = Tensor::zeros(f.rows(), f.cols());
                for unit in 0..f.cols() {
                    let col = f.col(unit);
                    let (_, grads) = histogram_loss_and_grad(
                        &self.stats.specs[unit],
                        &self.stats.histograms[unit],
                        &col,
                    );
                    for (r, g) in grads.into_iter().enumerate() {
                        g_f.set(r, unit, g);
                    }
                }
                zero_grad(&mut features);
                features.backward(&g_f);
                opt.step(&mut features.params_mut());
            }
        }
        rejoin(model, features, head);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_core::metrics;
    use tasfar_nn::init::Init;
    use tasfar_nn::layers::{Dense, Relu, Sequential};
    use tasfar_nn::loss::Mse;
    use tasfar_nn::optim::Adam;
    use tasfar_nn::train::{fit, TrainConfig};

    #[test]
    fn soft_histogram_is_normalised_and_localised() {
        let spec = SoftHistogram::new(0.0, 10.0, 11);
        let h = spec.evaluate(&[5.0, 5.0, 5.0]);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Mass concentrates at the bin containing 5.0 (index 5).
        let peak = h
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 5);
    }

    #[test]
    fn histogram_gradient_matches_finite_differences() {
        let spec = SoftHistogram::new(-2.0, 2.0, 9);
        let q = spec.evaluate(&[-0.5, 0.0, 0.5, 0.2, -0.1]);
        let values = [1.0, -1.5, 0.8];
        let (_, grads) = histogram_loss_and_grad(&spec, &q, &values);
        let eps = 1e-6;
        for i in 0..values.len() {
            let mut plus = values.to_vec();
            plus[i] += eps;
            let mut minus = values.to_vec();
            minus[i] -= eps;
            let (lp, _) = histogram_loss_and_grad(&spec, &q, &plus);
            let (lm, _) = histogram_loss_and_grad(&spec, &q, &minus);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grads[i]).abs() < 1e-6,
                "value {i}: numeric {numeric} vs analytic {}",
                grads[i]
            );
        }
    }

    #[test]
    fn matching_distributions_have_near_zero_gradient_balance() {
        // Values drawn from the same distribution as the source histogram:
        // the loss is near its floor and gradients are small.
        let spec = SoftHistogram::new(-3.0, 3.0, 15);
        let mut rng = Rng::new(1);
        let src: Vec<f64> = (0..2000).map(|_| rng.gaussian(0.0, 1.0)).collect();
        let q = spec.evaluate(&src);
        let tgt: Vec<f64> = (0..2000).map(|_| rng.gaussian(0.0, 1.0)).collect();
        let shifted: Vec<f64> = tgt.iter().map(|v| v + 1.5).collect();
        let (loss_match, _) = histogram_loss_and_grad(&spec, &q, &tgt);
        let (loss_shift, _) = histogram_loss_and_grad(&spec, &q, &shifted);
        assert!(loss_shift > loss_match, "shifted features must cost more");
    }

    #[test]
    fn adapter_repairs_a_measurement_shift() {
        // Source: y = x. Target: the *sensor* reads 2x (a measurement
        // shift) — exactly the gap class histogram restoration can repair.
        let mut rng = Rng::new(2);
        let n = 300;
        let xs = Tensor::rand_uniform(n, 1, -1.0, 1.0, &mut rng);
        let ys = xs.clone();
        let source = Dataset::new(xs, ys);
        let true_y = Tensor::rand_uniform(n, 1, -1.0, 1.0, &mut rng);
        let xt = true_y.scale(2.0); // miscalibrated sensor

        let mut model = Sequential::new()
            .add(Dense::new(1, 16, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(16, 16, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(16, 1, Init::XavierUniform, &mut rng));
        let mut opt = Adam::new(5e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &source.x,
            &source.y,
            None,
            &TrainConfig {
                epochs: 150,
                batch_size: 32,
                ..Default::default()
            },
        );
        let stats = record_source_stats(&mut model, &source, 2, 16);
        let before = metrics::mse(&model.predict(&xt), &true_y);
        let adapter = DatafreeAdapter::new(
            BaselineConfig {
                split_at: 2,
                epochs: 60,
                learning_rate: 2e-3,
                ..Default::default()
            },
            stats,
        );
        adapter
            .adapt(&mut model, None, &xt, &Mse)
            .expect("Datafree adaptation succeeds without source data");
        let after = metrics::mse(&model.predict(&xt), &true_y);
        assert!(
            after < before * 0.8,
            "histogram restoration should repair the scale shift: {before:.4} → {after:.4}"
        );
    }

    #[test]
    fn requires_no_source() {
        let spec = SoftHistogram::new(0.0, 1.0, 4);
        let stats = FeatureStats {
            specs: vec![spec.clone()],
            histograms: vec![spec.evaluate(&[0.5])],
        };
        let adapter = DatafreeAdapter::new(BaselineConfig::default(), stats);
        assert!(!DomainAdapter::<Sequential>::requires_source(&adapter));
    }

    #[test]
    fn degenerate_target_batches_are_typed_errors() {
        use tasfar_core::error::ErrorKind;
        let mut rng = Rng::new(3);
        let mut model = Sequential::new()
            .add(Dense::new(1, 4, Init::HeNormal, &mut rng))
            .add(Relu::new())
            .add(Dense::new(4, 1, Init::XavierUniform, &mut rng));
        let spec = SoftHistogram::new(0.0, 1.0, 4);
        let stats = FeatureStats {
            specs: vec![spec.clone()],
            histograms: vec![spec.evaluate(&[0.5])],
        };
        let adapter = DatafreeAdapter::new(BaselineConfig::default(), stats);

        let err = adapter
            .adapt(&mut model, None, &Tensor::zeros(1, 1), &Mse)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::EmptyTargetBatch);

        let mut poisoned = Tensor::zeros(8, 1);
        poisoned.set(2, 0, f64::NAN);
        let err = adapter
            .adapt(&mut model, None, &poisoned, &Mse)
            .unwrap_err();
        assert_eq!(
            err.kind,
            ErrorKind::NonFiniteInput {
                what: "target batch",
                bad: 1
            }
        );
    }
}
