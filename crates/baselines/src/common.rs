//! Shared machinery for the comparison schemes.
//!
//! Every baseline views the regressor as `feature extractor ∘ head`, split
//! at a layer index. Because layers cache their last forward pass, source
//! and target batches are always pushed through the feature extractor as
//! *one* concatenated batch and the gradients are reassembled before the
//! single backward call.

use tasfar_core::error::{AdaptError, ErrorKind};
use tasfar_data::Dataset;
use tasfar_nn::layers::{Layer, Mode};
use tasfar_nn::loss::Loss;
use tasfar_nn::model::SplitRegressor;
use tasfar_nn::tensor::Tensor;

/// Uniform interface over the comparison schemes, so the benchmark harness
/// can sweep them. `source` is `Some` only for the source-based UDA schemes
/// (MMD, ADV); the source-free schemes ignore it and must work with `None`.
///
/// Generic over any [`SplitRegressor`] — the schemes only need the model to
/// decompose into a trainable feature extractor and head, never a concrete
/// network type. `Box<dyn DomainAdapter<Sequential>>` remains usable for
/// heterogeneous scheme lists (`Sequential` being `tasfar_nn`'s network
/// container).
pub trait DomainAdapter<M: SplitRegressor> {
    /// Scheme name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether the scheme needs the source dataset at adaptation time.
    fn requires_source(&self) -> bool;

    /// Adapts `model` in place using unlabeled `target_x` (and the source
    /// dataset when the scheme is source-based).
    ///
    /// # Errors
    /// [`ErrorKind::MissingSource`] when a source-based scheme runs without
    /// source data, [`ErrorKind::EmptyTargetBatch`] /
    /// [`ErrorKind::NonFiniteInput`] on unusable target batches — the same
    /// taxonomy the TASFAR pipeline reports, so the benchmark harness
    /// handles every scheme's failures uniformly.
    fn adapt(
        &self,
        model: &mut M,
        source: Option<&Dataset>,
        target_x: &Tensor,
        loss: &dyn Loss,
    ) -> Result<(), AdaptError>;
}

/// Pre-flight validation shared by the baseline adapters: the target batch
/// must have at least `min_rows` rows (≥ 1) and contain only finite values.
pub fn validate_target(target_x: &Tensor, min_rows: usize) -> Result<(), AdaptError> {
    if target_x.rows() < min_rows.max(1) {
        return Err(AdaptError::new(ErrorKind::EmptyTargetBatch));
    }
    let bad = target_x
        .as_slice()
        .iter()
        .filter(|v| !v.is_finite())
        .count();
    if bad > 0 {
        return Err(AdaptError::new(ErrorKind::NonFiniteInput {
            what: "target batch",
            bad,
        }));
    }
    Ok(())
}

/// Unwraps the source dataset a source-based scheme needs, or reports the
/// typed [`ErrorKind::MissingSource`] failure.
pub fn require_source<'a>(
    source: Option<&'a Dataset>,
    baseline: &'static str,
) -> Result<&'a Dataset, AdaptError> {
    source.ok_or(AdaptError::new(ErrorKind::MissingSource { baseline }))
}

/// Hyper-parameters shared by the baseline training loops.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Layer index splitting the model into feature extractor and head.
    pub split_at: usize,
    /// Adaptation epochs.
    pub epochs: usize,
    /// Mini-batch size (per domain for the two-domain schemes).
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Shuffling / augmentation seed.
    pub seed: u64,
    /// Forward mode used during adaptation training. Defaults to `Eval`
    /// (dropout off): all four schemes fine-tune against objectives that
    /// are fixed functions of the current model (self-/teacher targets,
    /// feature statistics), where active dropout turns the loss into
    /// output-variance suppression and degrades the model — the same
    /// pathology the TASFAR trainer avoids.
    pub train_mode: Mode,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            split_at: 2,
            epochs: 30,
            batch_size: 32,
            learning_rate: 5e-4,
            seed: 0,
            train_mode: Mode::Eval,
        }
    }
}

/// Splits a model into `(features, head)` at `split_at` without copying
/// parameters (the pieces are moved out and must be rejoined with
/// [`rejoin`]), validating the index against the model's depth first.
pub fn split_model<M: SplitRegressor>(model: &mut M, split_at: usize) -> (M::Part, M::Part) {
    assert!(
        split_at > 0 && split_at < model.depth(),
        "split_model: split_at ({split_at}) must be inside the {}-layer chain",
        model.depth()
    );
    model.split(split_at)
}

/// Rejoins the pieces produced by [`split_model`] back into `model`.
pub fn rejoin<M: SplitRegressor>(model: &mut M, features: M::Part, head: M::Part) {
    model.rejoin(features, head);
}

/// Zeroes the accumulated gradients of any trainable [`Layer`] (model
/// parts included), via its parameter list.
pub fn zero_grad<L: Layer + ?Sized>(layer: &mut L) {
    for p in layer.params_mut() {
        p.zero_grad();
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy of logits against {0, 1} labels, with its gradient
/// with respect to the logits. Returns `(loss, grad)`.
///
/// # Panics
/// Panics if shapes disagree or `logits` is empty.
pub fn bce_with_logits(logits: &Tensor, labels: &[f64]) -> (f64, Tensor) {
    assert_eq!(logits.rows(), labels.len(), "bce: row mismatch");
    assert_eq!(logits.cols(), 1, "bce: logits must be a column");
    assert!(!labels.is_empty(), "bce: empty batch");
    let n = labels.len() as f64;
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(logits.rows(), 1);
    for (i, (&label, row)) in labels.iter().zip(logits.iter_rows()).enumerate() {
        let z = row[0];
        let p = sigmoid(z);
        // Stable: log(1+e^{-|z|}) + max(z,0) − z·label
        loss += (1.0 + (-z.abs()).exp()).ln() + z.max(0.0) - z * label;
        grad.set(i, 0, (p - label) / n);
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_nn::init::Init;
    use tasfar_nn::layers::{Dense, Relu, Sequential};
    use tasfar_nn::rng::Rng;

    fn mlp(rng: &mut Rng) -> Sequential {
        Sequential::new()
            .add(Dense::new(3, 8, Init::HeNormal, rng))
            .add(Relu::new())
            .add(Dense::new(8, 1, Init::XavierUniform, rng))
    }

    #[test]
    fn split_and_rejoin_roundtrip() {
        let mut rng = Rng::new(1);
        let mut model = mlp(&mut rng);
        let mut reference = model.clone();
        let x = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
        let before = reference.forward(&x, Mode::Eval);
        let (features, head) = split_model(&mut model, 2);
        rejoin(&mut model, features, head);
        assert_eq!(model.forward(&x, Mode::Eval), before);
    }

    #[test]
    #[should_panic(expected = "split_model")]
    fn split_at_zero_panics() {
        let mut rng = Rng::new(2);
        let mut model = mlp(&mut rng);
        split_model(&mut model, 0);
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(1000.0) <= 1.0 && sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0 && sigmoid(-1000.0) < 1e-300);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn bce_perfect_predictions_have_low_loss() {
        let logits = Tensor::from_vec(2, 1, vec![20.0, -20.0]);
        let (loss, grad) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss < 1e-6);
        assert!(grad.frobenius_norm() < 1e-6);
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(3, 1, vec![0.5, -1.2, 2.0]);
        let labels = [1.0, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &labels);
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus.set(i, 0, logits.get(i, 0) + eps);
            let mut minus = logits.clone();
            minus.set(i, 0, logits.get(i, 0) - eps);
            let (lp, _) = bce_with_logits(&plus, &labels);
            let (lm, _) = bce_with_logits(&minus, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.get(i, 0)).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_chance_level_is_log2() {
        let logits = Tensor::zeros(4, 1);
        let (loss, _) = bce_with_logits(&logits, &[0.0, 1.0, 0.0, 1.0]);
        assert!((loss - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
