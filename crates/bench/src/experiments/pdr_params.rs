//! PDR system-parameter studies: Figures 2, 3, 6, 7, 8, 9, 10, 11.
//!
//! These experiments exercise the estimator/generator machinery directly —
//! no adaptation training — so they sweep parameters cheaply.

use crate::report::{f2, f3, f4, mean, Table};
use crate::tasks::PdrContext;
use tasfar_core::prelude::*;
use tasfar_data::pdr::PdrUser;
use tasfar_data::Dataset;
use tasfar_nn::tensor::Tensor;

/// MC products for one user's adaptation set.
pub struct UserMc {
    /// The (scaled) adaptation-set dataset.
    pub adapt: Dataset,
    /// MC-dropout outputs of the *source* model on the adaptation set.
    pub mc: McPrediction,
    /// Confidence split under the context's calibration.
    pub split: ConfidenceSplit,
}

/// Runs the source model's MC-dropout pass on a user's adaptation set.
pub fn user_mc(ctx: &PdrContext, user: &PdrUser) -> UserMc {
    let (adapt, _, _) = ctx.user_splits(user);
    let mut model = ctx.model.clone();
    let mc = McDropout::new(ctx.tasfar.mc_samples)
        .relative(ctx.tasfar.relative_uncertainty)
        .predict(&mut model, &adapt.x);
    let classifier =
        tasfar_core::adapt::scenario_classifier(&ctx.calib, &ctx.tasfar, &mc.uncertainty);
    let split = classifier.split(&mc.uncertainty);
    UserMc { adapt, mc, split }
}

/// Per-dimension calibrated spreads for a set of sample indices.
pub fn sigmas(ctx: &PdrContext, mc: &McPrediction, indices: &[usize]) -> Tensor {
    let dims = mc.point.cols();
    let mut out = Tensor::zeros(indices.len(), dims);
    for (row, &i) in indices.iter().enumerate() {
        for d in 0..dims {
            out.set(row, d, ctx.calib.qs[d].sigma(mc.std.get(i, d)));
        }
    }
    out
}

/// Builds the estimated and ground-truth joint maps for a user at a grid
/// size, both over the same grid (covering predictions and labels).
pub fn user_maps(ctx: &PdrContext, u: &UserMc, grid_cell: f64) -> (DensityMap2d, DensityMap2d) {
    let conf_pred = u.mc.point.select_rows(&u.split.confident);
    let conf_sigma = sigmas(ctx, &u.mc, &u.split.confident);
    let labels = &u.adapt.y;
    // One grid covering both predictions and labels so MAE is well-defined.
    let xs: Vec<f64> = conf_pred.col_iter(0).chain(labels.col_iter(0)).collect();
    let ys: Vec<f64> = conf_pred.col_iter(1).chain(labels.col_iter(1)).collect();
    let xgrid = GridSpec::covering(&xs, grid_cell, 3);
    let ygrid = GridSpec::covering(&ys, grid_cell, 3);
    let est = DensityMap2d::estimate(
        &conf_pred,
        &conf_sigma,
        xgrid.clone(),
        ygrid.clone(),
        ctx.tasfar.error_model,
    );
    // Ground truth from the confident samples' true labels (the labels the
    // estimator is trying to recover).
    let conf_labels = u.adapt.y.select_rows(&u.split.confident);
    let truth = DensityMap2d::from_labels(&conf_labels, xgrid, ygrid);
    (est, truth)
}

/// Pseudo-labels all uncertain samples of a user against a map built at the
/// given grid size / error model; returns per-sample `(pred_err, pseudo_err,
/// credibility)` tuples (Euclidean errors against ground truth).
pub fn user_pseudo_errors(
    ctx: &PdrContext,
    u: &UserMc,
    grid_cell: f64,
    model: ErrorModel,
    tau: f64,
) -> Vec<(f64, f64, f64)> {
    let conf_pred = u.mc.point.select_rows(&u.split.confident);
    let conf_sigma = sigmas(ctx, &u.mc, &u.split.confident);
    let xgrid = GridSpec::covering(&conf_pred.col(0), grid_cell, 4);
    let ygrid = GridSpec::covering(&conf_pred.col(1), grid_cell, 4);
    let map = DensityMap2d::estimate(&conf_pred, &conf_sigma, xgrid, ygrid, model);
    let generator = PseudoLabelGenerator2d::new(&map, tau, model);

    let unc_sigma = sigmas(ctx, &u.mc, &u.split.uncertain);
    let mut out = Vec::with_capacity(u.split.uncertain.len());
    for (row, &i) in u.split.uncertain.iter().enumerate() {
        let pred = [u.mc.point.get(i, 0), u.mc.point.get(i, 1)];
        let p = generator.generate(
            pred,
            [unc_sigma.get(row, 0), unc_sigma.get(row, 1)],
            u.mc.uncertainty[i].max(1e-12),
        );
        let truth = [u.adapt.y.get(i, 0), u.adapt.y.get(i, 1)];
        let pred_err = ((pred[0] - truth[0]).powi(2) + (pred[1] - truth[1]).powi(2)).sqrt();
        let pseudo_err = ((p.value[0] - truth[0]).powi(2) + (p.value[1] - truth[1]).powi(2)).sqrt();
        out.push((pred_err, pseudo_err, p.credibility));
    }
    out
}

/// Figure 2: stride-length label distributions of different users.
pub fn fig2(ctx: &PdrContext) -> Table {
    let bins = 30;
    let (lo, hi) = (0.2, 1.3);
    let width = (hi - lo) / bins as f64;
    let mut headers = vec!["stride_m".to_string()];
    let users: Vec<&PdrUser> = ctx
        .world
        .seen_users
        .iter()
        .take(2)
        .chain(ctx.world.unseen_users.iter().take(2))
        .collect();
    for u in &users {
        headers.push(format!("user{}_pdf", u.profile.id));
    }
    let mut table = Table {
        title: "Fig 2 stride length distributions".into(),
        headers,
        rows: Vec::new(),
    };
    let hists: Vec<Vec<f64>> = users
        .iter()
        .map(|u| {
            let ds = u.full_dataset();
            let strides: Vec<f64> =
                ds.y.iter_rows()
                    .map(|d| (d[0] * d[0] + d[1] * d[1]).sqrt())
                    .collect();
            let mut h = vec![0.0; bins];
            for s in &strides {
                let b = (((s - lo) / width) as usize).min(bins - 1);
                h[b] += 1.0 / (strides.len() as f64 * width);
            }
            h
        })
        .collect();
    for b in 0..bins {
        let mut row = vec![f3(lo + (b as f64 + 0.5) * width)];
        for h in &hists {
            row.push(f3(h[b]));
        }
        table.rows.push(row);
    }
    table
}

/// Figure 3: prediction uncertainty vs error (larger uncertainty → larger
/// errors). Bins the seen-group adaptation samples by uncertainty.
pub fn fig3(ctx: &PdrContext) -> Table {
    let mut us = Vec::new();
    let mut errs = Vec::new();
    for user in &ctx.world.seen_users {
        let u = user_mc(ctx, user);
        for i in 0..u.adapt.len() {
            us.push(u.mc.uncertainty[i]);
            let e = ((u.mc.point.get(i, 0) - u.adapt.y.get(i, 0)).powi(2)
                + (u.mc.point.get(i, 1) - u.adapt.y.get(i, 1)).powi(2))
            .sqrt();
            errs.push(e);
        }
    }
    let corr = metrics::pearson(&us, &errs);
    // Sort into 10 uncertainty deciles.
    let mut order: Vec<usize> = (0..us.len()).collect();
    order.sort_by(|&a, &b| us[a].total_cmp(&us[b]));
    let mut table = Table::new(
        format!("Fig 3 uncertainty vs error (pearson {})", f3(corr)),
        &["decile", "mean_uncertainty", "mean_error_m"],
    );
    let per = (order.len() / 10).max(1);
    for d in 0..10 {
        let lo = d * per;
        let hi = if d == 9 { order.len() } else { (d + 1) * per };
        if lo >= order.len() {
            break;
        }
        let idx = &order[lo..hi.min(order.len())];
        let mu = mean(&idx.iter().map(|&i| us[i]).collect::<Vec<_>>());
        let me = mean(&idx.iter().map(|&i| errs[i]).collect::<Vec<_>>());
        table.row(vec![format!("{d}"), f4(mu), f3(me)]);
    }
    table
}

/// Figure 6: estimated vs true label density maps for two users; reports
/// map MAE and mass correlation, plus ring statistics, and renders both
/// maps as terminal heatmaps (the paper's Fig. 6 visual).
pub fn fig6(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Fig 6 density map quality (two users)",
        &[
            "user",
            "map_mae",
            "mass_corr",
            "est_ring_radius_m",
            "true_ring_radius_m",
        ],
    );
    for user in ctx.world.seen_users.iter().take(2) {
        let u = user_mc(ctx, user);
        let (est, truth) = user_maps(ctx, &u, ctx.tasfar.grid_cell);
        let corr = metrics::pearson(est.masses(), truth.masses());
        println!("-- user {} estimated label density map --", user.profile.id);
        print!("{}", crate::viz::heatmap_2d(&est, 48));
        println!("-- user {} true label density map --", user.profile.id);
        print!("{}", crate::viz::heatmap_2d(&truth, 48));
        table.row(vec![
            format!("{}", user.profile.id),
            f4(est.mae(&truth)),
            f3(corr),
            f3(ring_radius(&est)),
            f3(ring_radius(&truth)),
        ]);
    }
    table
}

/// Mass-weighted mean radius of a 2-D map — the "ring radius" of Fig. 6.
fn ring_radius(map: &DensityMap2d) -> f64 {
    let mut total = 0.0;
    let mut weighted = 0.0;
    for iy in 0..map.yspec.bins {
        for ix in 0..map.xspec.bins {
            let m = map.mass(ix, iy);
            if m > 0.0 {
                let r = (map.xspec.center(ix).powi(2) + map.yspec.center(iy).powi(2)).sqrt();
                weighted += m * r;
                total += m;
            }
        }
    }
    if total > 0.0 {
        weighted / total
    } else {
        0.0
    }
}

/// Figure 7: density-map estimation MAE vs grid size.
pub fn fig7(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Fig 7 map estimation error vs grid size",
        &["grid_m", "map_mae"],
    );
    for &g in &[0.025, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let maes: Vec<f64> = ctx
            .world
            .seen_users
            .iter()
            .map(|user| {
                let u = user_mc(ctx, user);
                let (est, truth) = user_maps(ctx, &u, g);
                est.mae(&truth)
            })
            .collect();
        table.row(vec![f3(g), f4(mean(&maes))]);
    }
    table
}

/// Figure 8: pseudo-label error vs grid size under different error models.
pub fn fig8(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Fig 8 pseudo-label error vs grid size and error model",
        &["grid_m", "gaussian", "laplace", "uniform", "pred_error"],
    );
    let tau = ctx.calib.classifier.tau;
    for &g in &[0.025, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let mut cells = vec![f3(g)];
        let mut pred_err_all = Vec::new();
        for model in [
            ErrorModel::Gaussian,
            ErrorModel::Laplace,
            ErrorModel::Uniform,
        ] {
            let mut pseudo_errs = Vec::new();
            for user in &ctx.world.seen_users {
                let u = user_mc(ctx, user);
                for (pe, se, _) in user_pseudo_errors(ctx, &u, g, model, tau) {
                    pseudo_errs.push(se);
                    if model == ErrorModel::Gaussian {
                        pred_err_all.push(pe);
                    }
                }
            }
            cells.push(f4(mean(&pseudo_errs)));
        }
        cells.push(f4(mean(&pred_err_all)));
        table.row(cells);
    }
    table
}

/// Figure 9: pseudo-label error vs segment quantity q in the Q_s fit.
pub fn fig9(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Fig 9 pseudo-label error vs segment quantity q",
        &["q", "pseudo_error_m"],
    );
    let source = ctx.scaled_source();
    for &q in &[1usize, 2, 5, 10, 20, 40, 80] {
        let mut cfg = ctx.tasfar.clone();
        cfg.segments = q;
        let mut model = ctx.model.clone();
        let calib = calibrate_on_source(&mut model, &source, &cfg)
            .expect("the sweep's re-calibration succeeds on the source set");
        // Swap the re-fitted calibration into a context view.
        let ctx_view = PdrContext {
            world: ctx.world.clone(),
            model: ctx.model.clone(),
            scaler: ctx.scaler.clone(),
            calib,
            tasfar: cfg,
            scale: ctx.scale,
        };
        let mut errs = Vec::new();
        for user in &ctx_view.world.seen_users {
            let u = user_mc(&ctx_view, user);
            for (_, se, _) in user_pseudo_errors(
                &ctx_view,
                &u,
                ctx.tasfar.grid_cell,
                ErrorModel::Gaussian,
                ctx_view.calib.classifier.tau,
            ) {
                errs.push(se);
            }
        }
        table.row(vec![format!("{q}"), f4(mean(&errs))]);
    }
    table
}

/// Figure 10: pseudo-label error vs the confidence ratio η.
pub fn fig10(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Fig 10 pseudo-label error vs confidence ratio eta",
        &["eta", "tau", "pseudo_error_m", "uncertain_ratio"],
    );
    let source = ctx.scaled_source();
    for &eta in &[0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98] {
        let mut cfg = ctx.tasfar.clone();
        cfg.eta = eta;
        let mut model = ctx.model.clone();
        let calib = calibrate_on_source(&mut model, &source, &cfg)
            .expect("the sweep's re-calibration succeeds on the source set");
        let tau = calib.classifier.tau;
        let ctx_view = PdrContext {
            world: ctx.world.clone(),
            model: ctx.model.clone(),
            scaler: ctx.scaler.clone(),
            calib,
            tasfar: cfg,
            scale: ctx.scale,
        };
        let mut errs = Vec::new();
        let mut unc_ratios = Vec::new();
        for user in &ctx_view.world.seen_users {
            let u = user_mc(&ctx_view, user);
            unc_ratios.push(u.split.uncertain_ratio());
            for (_, se, _) in user_pseudo_errors(
                &ctx_view,
                &u,
                ctx.tasfar.grid_cell,
                ErrorModel::Gaussian,
                tau,
            ) {
                errs.push(se);
            }
        }
        table.row(vec![
            f2(eta),
            f4(tau),
            f4(mean(&errs)),
            f3(mean(&unc_ratios)),
        ]);
    }
    table
}

/// Figure 11: distribution over users of the correlation between the
/// credibility β and the pseudo-label improvement.
pub fn fig11(ctx: &PdrContext) -> Table {
    let mut corrs = Vec::new();
    for user in ctx.world.seen_users.iter().chain(&ctx.world.unseen_users) {
        let u = user_mc(ctx, user);
        let triples = user_pseudo_errors(
            ctx,
            &u,
            ctx.tasfar.grid_cell,
            ErrorModel::Gaussian,
            ctx.calib.classifier.tau,
        );
        if triples.len() < 5 {
            continue;
        }
        // The paper correlates β with the pseudo-label *accuracy* — how
        // close ŷ lands to the ground truth (negated error).
        let betas: Vec<f64> = triples.iter().map(|t| t.2).collect();
        let accuracy: Vec<f64> = triples.iter().map(|t| -t.1).collect();
        corrs.push(metrics::pearson(&betas, &accuracy));
    }
    let mut table = Table::new(
        format!(
            "Fig 11 corr(beta, pseudo-label accuracy) over users (mean {})",
            f3(mean(&corrs))
        ),
        &["corr_bin", "user_count"],
    );
    let edges = [-1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0];
    for w in edges.windows(2) {
        let count = corrs.iter().filter(|&&c| c >= w[0] && c < w[1]).count();
        table.row(vec![
            format!("[{:.2},{:.2})", w[0], w[1]),
            format!("{count}"),
        ]);
    }
    table
}
