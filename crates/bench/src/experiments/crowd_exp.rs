//! Crowd-counting experiments: Table I, Figure 19, Figure 20.
//!
//! Following the crowd-counting literature the paper builds on (MCNN and
//! successors), the "MSE" columns report the *root* mean squared error —
//! that convention is what makes ShanghaiTech MAE/MSE numbers directly
//! comparable, and the paper's Table I magnitudes match it.

use crate::report::{f2, mean, Table};
use crate::schemes::{run_scheme, Scheme, SchemeRun};
use crate::tasks::{CrowdContext, CROWD_SPLIT_AT};
use tasfar_core::prelude::*;
use tasfar_data::Dataset;
use tasfar_nn::prelude::*;

/// Metrics of one scheme on one scene.
#[derive(Debug, Clone)]
pub struct SceneEval {
    /// MAE on the whole adaptation set.
    pub adapt_mae: f64,
    /// RMSE on the whole adaptation set (the literature's "MSE").
    pub adapt_rmse: f64,
    /// MAE on the baseline-uncertain part of the adaptation set.
    pub unc_mae: f64,
    /// RMSE on the baseline-uncertain part.
    pub unc_rmse: f64,
    /// MAE on the held-out test split.
    pub test_mae: f64,
    /// RMSE on the held-out test split.
    pub test_rmse: f64,
}

/// One scheme across all scenes.
#[derive(Debug, Clone)]
pub struct CrowdSchemeResult {
    /// Scheme name.
    pub scheme: &'static str,
    /// Per-scene evaluations (partitioned adaptation: one run per scene).
    pub per_scene: Vec<SceneEval>,
}

impl CrowdSchemeResult {
    fn pooled(&self, f: impl Fn(&SceneEval) -> f64) -> f64 {
        mean(&self.per_scene.iter().map(f).collect::<Vec<_>>())
    }
}

/// The full crowd comparison (partitioned by scene, as the paper's main
/// protocol).
pub struct CrowdComparison {
    /// Per-scheme results, `Scheme::all()` order.
    pub schemes: Vec<CrowdSchemeResult>,
}

fn eval_scene(
    model: &mut Sequential,
    adapt_ds: &Dataset,
    test_ds: &Dataset,
    uncertain: &[usize],
) -> SceneEval {
    let pa = model.predict(&adapt_ds.x);
    let pt = model.predict(&test_ds.x);
    let pu = pa.select_rows(uncertain);
    let yu = adapt_ds.y.select_rows(uncertain);
    SceneEval {
        adapt_mae: metrics::mae(&pa, &adapt_ds.y),
        adapt_rmse: metrics::rmse(&pa, &adapt_ds.y),
        unc_mae: if uncertain.is_empty() {
            0.0
        } else {
            metrics::mae(&pu, &yu)
        },
        unc_rmse: if uncertain.is_empty() {
            0.0
        } else {
            metrics::rmse(&pu, &yu)
        },
        test_mae: metrics::mae(&pt, &test_ds.y),
        test_rmse: metrics::rmse(&pt, &test_ds.y),
    }
}

/// Runs all six schemes on all three scenes (partitioned adaptation).
pub fn compare(ctx: &CrowdContext) -> CrowdComparison {
    let source = ctx.scaled_source();
    // Per-scene splits and the (scheme-independent) baseline uncertain sets.
    let splits: Vec<(Dataset, Dataset, Vec<usize>)> = (0..ctx.world.scenes.len())
        .map(|s| {
            let (adapt_ds, test_ds) = ctx.scene_splits(s, 100 + s as u64);
            let mut model = ctx.model.clone();
            let mc = McDropout::new(ctx.tasfar.mc_samples)
                .relative(ctx.tasfar.relative_uncertainty)
                .predict(&mut model, &adapt_ds.x);
            let classifier =
                tasfar_core::adapt::scenario_classifier(&ctx.calib, &ctx.tasfar, &mc.uncertainty);
            let split = classifier.split(&mc.uncertainty);
            (adapt_ds, test_ds, split.uncertain)
        })
        .collect();

    let schemes = Scheme::all()
        .into_iter()
        .map(|scheme| {
            let per_scene = splits
                .iter()
                .enumerate()
                .map(|(s, (adapt_ds, test_ds, uncertain))| {
                    let run = SchemeRun {
                        source_model: &ctx.model,
                        source: &source,
                        target_x: &adapt_ds.x,
                        calib: &ctx.calib,
                        tasfar: &ctx.tasfar,
                        split_at: CROWD_SPLIT_AT,
                        loss: &Mse,
                        seed: s as u64,
                    };
                    let mut adapted = run_scheme(scheme, &run);
                    eval_scene(&mut adapted, adapt_ds, test_ds, uncertain)
                })
                .collect();
            CrowdSchemeResult {
                scheme: scheme.name(),
                per_scene,
            }
        })
        .collect();
    CrowdComparison { schemes }
}

/// Table I: MAE/MSE of every scheme on the adaptation set (whole and
/// uncertain) and the test set, pooled over the three scenes.
pub fn table1(cmp: &CrowdComparison) -> Table {
    let mut table = Table::new(
        "Table I crowd counting comparison",
        &[
            "scheme",
            "adapt_MAE",
            "adapt_MSE",
            "unc_MAE",
            "unc_MSE",
            "test_MAE",
            "test_MSE",
        ],
    );
    for r in &cmp.schemes {
        table.row(vec![
            r.scheme.to_string(),
            f2(r.pooled(|s| s.adapt_mae)),
            f2(r.pooled(|s| s.adapt_rmse)),
            f2(r.pooled(|s| s.unc_mae)),
            f2(r.pooled(|s| s.unc_rmse)),
            f2(r.pooled(|s| s.test_mae)),
            f2(r.pooled(|s| s.test_rmse)),
        ]);
    }
    table
}

/// Error-reduction companion to Table I (the paper's "Error Reduction (%)"
/// columns).
pub fn table1_reductions(cmp: &CrowdComparison) -> Table {
    let mut table = Table::new(
        "Table I error reductions",
        &[
            "scheme",
            "adapt_MAE_%",
            "adapt_MSE_%",
            "unc_MAE_%",
            "unc_MSE_%",
            "test_MAE_%",
            "test_MSE_%",
        ],
    );
    let base = &cmp.schemes[0];
    for r in cmp.schemes.iter().skip(1) {
        let red = |f: &dyn Fn(&SceneEval) -> f64| {
            metrics::error_reduction_pct(base.pooled(f), r.pooled(f))
        };
        table.row(vec![
            r.scheme.to_string(),
            f2(red(&|s| s.adapt_mae)),
            f2(red(&|s| s.adapt_rmse)),
            f2(red(&|s| s.unc_mae)),
            f2(red(&|s| s.unc_rmse)),
            f2(red(&|s| s.test_mae)),
            f2(red(&|s| s.test_rmse)),
        ]);
    }
    table
}

/// Figure 19: per-scene test-set comparison.
pub fn fig19(cmp: &CrowdComparison) -> Table {
    let mut table = Table::new(
        "Fig 19 per-scene test MAE",
        &["scheme", "scene1_MAE", "scene2_MAE", "scene3_MAE"],
    );
    for r in &cmp.schemes {
        if r.scheme == "ADV" {
            continue; // the paper omits ADV here ("performs similarly to MMD")
        }
        let mut row = vec![r.scheme.to_string()];
        for s in &r.per_scene {
            row.push(f2(s.test_mae));
        }
        table.row(row);
    }
    table
}

/// Figure 20: TASFAR with partitioned vs fused target scenes.
pub fn fig20(ctx: &CrowdContext, cmp: &CrowdComparison) -> Table {
    // Fused: one adaptation over all scenes' adaptation data.
    let splits: Vec<(Dataset, Dataset)> = (0..ctx.world.scenes.len())
        .map(|s| ctx.scene_splits(s, 100 + s as u64))
        .collect();
    let fused_adapt = Dataset::concat(&splits.iter().map(|(a, _)| a).collect::<Vec<_>>());
    let mut fused_model = ctx.model.clone();
    let _ = adapt(
        &mut fused_model,
        &ctx.calib,
        &fused_adapt.x,
        &Mse,
        &ctx.tasfar,
    );

    let tasfar_part = cmp
        .schemes
        .iter()
        .find(|r| r.scheme == "TASFAR")
        .expect("TASFAR row");
    let baseline = &cmp.schemes[0];

    let mut table = Table::new(
        "Fig 20 partitioned vs fused adaptation (test MAE)",
        &["scene", "baseline", "tasfar_partitioned", "tasfar_fused"],
    );
    for (s, (_, test_ds)) in splits.iter().enumerate() {
        let fused_mae = metrics::mae(&fused_model.predict(&test_ds.x), &test_ds.y);
        table.row(vec![
            format!("{}", s + 1),
            f2(baseline.per_scene[s].test_mae),
            f2(tasfar_part.per_scene[s].test_mae),
            f2(fused_mae),
        ]);
    }
    table
}
