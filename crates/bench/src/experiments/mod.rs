//! One module per group of paper experiments. Each experiment prints its
//! table(s) to stdout and writes CSV artefacts under `results/`.

pub mod ablations;
pub mod crowd_exp;
pub mod multiseed;
pub mod pdr_adapt;
pub mod pdr_params;
pub mod tabular_exp;
