//! PDR adaptation experiments: Figures 12–18 and the Figure 22 failure case.

use crate::report::{f2, f3, mean, Table};
use crate::schemes::{run_scheme, Scheme, SchemeRun};
use crate::tasks::{PdrContext, PDR_SPLIT_AT};
use tasfar_core::prelude::*;
use tasfar_data::pdr::PdrUser;
use tasfar_data::Dataset;
use tasfar_nn::prelude::*;

/// Evaluation of one scheme on one user.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme name.
    pub scheme: &'static str,
    /// STE on the adaptation set (Eq. 23).
    pub ste_adapt: f64,
    /// STE on the held-out test set.
    pub ste_test: f64,
    /// RTE per test trajectory (Eq. 24).
    pub rte_test: Vec<f64>,
}

/// All schemes evaluated on one user (index 0 is always the baseline).
#[derive(Debug, Clone)]
pub struct UserComparison {
    /// The user id.
    pub user_id: usize,
    /// Per-scheme evaluations.
    pub results: Vec<SchemeResult>,
}

impl UserComparison {
    /// The baseline result.
    pub fn baseline(&self) -> &SchemeResult {
        &self.results[0]
    }

    /// The result of a named scheme.
    pub fn scheme(&self, name: &str) -> &SchemeResult {
        self.results
            .iter()
            .find(|r| r.scheme == name)
            .unwrap_or_else(|| panic!("scheme {name} missing"))
    }
}

fn eval_model(
    model: &mut Sequential,
    adapt: &Dataset,
    test: &Dataset,
    test_trajs: &[Dataset],
) -> (f64, f64, Vec<f64>) {
    let pa = model.predict(&adapt.x);
    let pt = model.predict(&test.x);
    let rtes = test_trajs
        .iter()
        .map(|t| metrics::rte(&model.predict(&t.x), &t.y))
        .collect();
    (
        metrics::step_error(&pa, &adapt.y),
        metrics::step_error(&pt, &test.y),
        rtes,
    )
}

/// Runs the full six-scheme comparison over a user group.
pub fn compare_group(
    ctx: &PdrContext,
    users: &[PdrUser],
    schemes: &[Scheme],
) -> Vec<UserComparison> {
    let source = ctx.scaled_source();
    users
        .iter()
        .map(|user| {
            let (adapt_ds, test_ds, test_trajs) = ctx.user_splits(user);
            let results = schemes
                .iter()
                .map(|&scheme| {
                    let run = SchemeRun {
                        source_model: &ctx.model,
                        source: &source,
                        target_x: &adapt_ds.x,
                        calib: &ctx.calib,
                        tasfar: &ctx.tasfar,
                        split_at: PDR_SPLIT_AT,
                        loss: &Mse,
                        seed: user.profile.id as u64,
                    };
                    let mut adapted = run_scheme(scheme, &run);
                    let (ste_adapt, ste_test, rte_test) =
                        eval_model(&mut adapted, &adapt_ds, &test_ds, &test_trajs);
                    SchemeResult {
                        scheme: scheme.name(),
                        ste_adapt,
                        ste_test,
                        rte_test,
                    }
                })
                .collect();
            UserComparison {
                user_id: user.profile.id,
                results,
            }
        })
        .collect()
}

/// Figure 14: per-user STE reduction (%) on the adaptation set, seen group.
pub fn fig14(cmp: &[UserComparison]) -> Table {
    let scheme_names: Vec<&'static str> = cmp[0].results.iter().skip(1).map(|r| r.scheme).collect();
    let mut headers = vec!["user".to_string()];
    headers.extend(scheme_names.iter().map(|s| format!("{s}_ste_red_%")));
    let mut table = Table {
        title: "Fig 14 STE reduction per user (seen group, adaptation set)".into(),
        headers,
        rows: Vec::new(),
    };
    let mut sums = vec![0.0; scheme_names.len()];
    for user in cmp {
        let base = user.baseline().ste_adapt;
        let mut row = vec![format!("{}", user.user_id)];
        for (k, name) in scheme_names.iter().enumerate() {
            let red = metrics::error_reduction_pct(base, user.scheme(name).ste_adapt);
            sums[k] += red;
            row.push(f2(red));
        }
        table.row(row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in &sums {
        mean_row.push(f2(s / cmp.len() as f64));
    }
    table.row(mean_row);
    table
}

/// Figure 15: mean STE reduction on adaptation vs test sets per scheme.
pub fn fig15(cmp: &[UserComparison]) -> Table {
    let mut table = Table::new(
        "Fig 15 STE reduction adaptation vs test set",
        &["scheme", "adapt_red_%", "test_red_%"],
    );
    let scheme_names: Vec<&'static str> = cmp[0].results.iter().skip(1).map(|r| r.scheme).collect();
    for name in scheme_names {
        let adapt: Vec<f64> = cmp
            .iter()
            .map(|u| metrics::error_reduction_pct(u.baseline().ste_adapt, u.scheme(name).ste_adapt))
            .collect();
        let test: Vec<f64> = cmp
            .iter()
            .map(|u| metrics::error_reduction_pct(u.baseline().ste_test, u.scheme(name).ste_test))
            .collect();
        table.row(vec![name.to_string(), f2(mean(&adapt)), f2(mean(&test))]);
    }
    table
}

/// Figure 16: uncertain-data ratio and their error share, seen vs unseen.
pub fn fig16(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Fig 16 uncertain data ratio and error share",
        &["group", "uncertain_data_%", "uncertain_error_%"],
    );
    for (name, users) in [
        ("seen", &ctx.world.seen_users),
        ("unseen", &ctx.world.unseen_users),
    ] {
        let mut data_ratio = Vec::new();
        let mut err_ratio = Vec::new();
        for user in users {
            let u = super::pdr_params::user_mc(ctx, user);
            data_ratio.push(u.split.uncertain_ratio());
            let err = |i: usize| -> f64 {
                ((u.mc.point.get(i, 0) - u.adapt.y.get(i, 0)).powi(2)
                    + (u.mc.point.get(i, 1) - u.adapt.y.get(i, 1)).powi(2))
                .sqrt()
            };
            let unc_err: f64 = u.split.uncertain.iter().map(|&i| err(i)).sum();
            let total_err: f64 = (0..u.adapt.len()).map(err).sum();
            if total_err > 0.0 {
                err_ratio.push(unc_err / total_err);
            }
        }
        table.row(vec![
            name.to_string(),
            f2(100.0 * mean(&data_ratio)),
            f2(100.0 * mean(&err_ratio)),
        ]);
    }
    table
}

/// Figures 17/18: share of test trajectories whose RTE reduction exceeds a
/// threshold, per scheme.
pub fn fig17_18(cmp: &[UserComparison], group: &str, max_threshold: f64) -> Table {
    let fig = if group == "seen" { "Fig 17" } else { "Fig 18" };
    let scheme_names: Vec<&'static str> = cmp[0].results.iter().skip(1).map(|r| r.scheme).collect();
    let mut headers = vec!["rte_red_threshold_m".to_string()];
    headers.extend(scheme_names.iter().map(|s| format!("{s}_traj_frac")));
    let mut table = Table {
        title: format!("{fig} RTE reduction over test trajectories ({group} group)"),
        headers,
        rows: Vec::new(),
    };
    // Collect per-trajectory RTE reductions per scheme.
    let reductions: Vec<Vec<f64>> = scheme_names
        .iter()
        .map(|name| {
            let mut reds = Vec::new();
            for user in cmp {
                for (b, s) in user
                    .baseline()
                    .rte_test
                    .iter()
                    .zip(&user.scheme(name).rte_test)
                {
                    reds.push(b - s);
                }
            }
            reds
        })
        .collect();
    let steps = 8;
    for k in 0..=steps {
        let thr = max_threshold * k as f64 / steps as f64;
        let mut row = vec![f2(thr)];
        for reds in &reductions {
            let frac = reds.iter().filter(|&&r| r > thr).count() as f64 / reds.len().max(1) as f64;
            row.push(f3(frac));
        }
        table.row(row);
    }
    // Mean reduction summary row.
    let mut row = vec!["mean_red_m".to_string()];
    for reds in &reductions {
        row.push(f3(mean(reds)));
    }
    table.row(row);
    table
}

/// A custom fine-tune loop that evaluates a callback after every epoch —
/// the instrumentation behind Figures 12 and 13.
#[allow(clippy::too_many_arguments)]
pub fn finetune_trace(
    model: &mut Sequential,
    x: &tasfar_nn::tensor::Tensor,
    y: &tasfar_nn::tensor::Tensor,
    weights: &[f64],
    lr: f64,
    epochs: usize,
    batch: usize,
    seed: u64,
    mut eval: impl FnMut(&mut Sequential) -> f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut opt = Adam::new(lr);
    let mut rng = Rng::new(seed);
    let mut order: Vec<usize> = (0..x.rows()).collect();
    let mut losses = Vec::with_capacity(epochs);
    let mut evals = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut epoch_weight = 0.0;
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            let yb = y.select_rows(chunk);
            let wb: Vec<f64> = chunk.iter().map(|&i| weights[i]).collect();
            let bw: f64 = wb.iter().sum();
            if bw <= 0.0 {
                continue;
            }
            model.zero_grad();
            let pred = model.forward(&xb, Mode::Train);
            epoch_loss += Mse.value(&pred, &yb, Some(&wb)) * bw;
            epoch_weight += bw;
            let grad = Mse.grad(&pred, &yb, Some(&wb));
            model.backward(&grad);
            opt.step(&mut model.params_mut());
        }
        losses.push(if epoch_weight > 0.0 {
            epoch_loss / epoch_weight
        } else {
            0.0
        });
        evals.push(eval(model));
    }
    (losses, evals)
}

/// Assembles the TASFAR fine-tuning set for a user without training
/// (pseudo-labelled uncertain + self-labelled confident), by running the
/// pipeline with a zero epoch budget.
fn tasfar_training_set(
    ctx: &PdrContext,
    adapt_ds: &Dataset,
) -> (
    tasfar_nn::tensor::Tensor,
    tasfar_nn::tensor::Tensor,
    Vec<f64>,
) {
    let mut probe = ctx.model.clone();
    let mut cfg = ctx.tasfar.clone();
    cfg.epochs = 0;
    let outcome = adapt(&mut probe, &ctx.calib, &adapt_ds.x, &Mse, &cfg)
        .expect("tasfar_training_set: the probe batch must adapt");
    let dims = adapt_ds.output_dim();
    let n = outcome.split.uncertain.len() + outcome.split.confident.len();
    let mut rows = Vec::with_capacity(n);
    let mut y = tasfar_nn::tensor::Tensor::zeros(n, dims);
    let mut weights = Vec::with_capacity(n);
    for (row, &i) in outcome.split.uncertain.iter().enumerate() {
        rows.push(i);
        for d in 0..dims {
            y.set(row, d, outcome.pseudo[row].value[d]);
        }
        weights.push(outcome.pseudo[row].credibility);
    }
    let offset = outcome.split.uncertain.len();
    for (row, &i) in outcome.split.confident.iter().enumerate() {
        rows.push(i);
        for d in 0..dims {
            y.set(offset + row, d, outcome.mc.point.get(i, d));
        }
        weights.push(1.0);
    }
    (adapt_ds.x.select_rows(&rows), y, weights)
}

/// Figure 12: ablation of the credibility weight β — STE per epoch with and
/// without weighting, for two users.
pub fn fig12(ctx: &PdrContext) -> Table {
    let epochs = ctx.tasfar.epochs.min(100);
    let mut table = Table::new(
        "Fig 12 credibility ablation (STE vs epoch)",
        &[
            "epoch",
            "u1_with_beta",
            "u1_without",
            "u2_with_beta",
            "u2_without",
        ],
    );
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for user in ctx.world.seen_users.iter().take(2) {
        let (adapt_ds, _, _) = ctx.user_splits(user);
        let (x, y, weights) = tasfar_training_set(ctx, &adapt_ds);
        for use_beta in [true, false] {
            let w: Vec<f64> = if use_beta {
                weights.clone()
            } else {
                weights
                    .iter()
                    .map(|&b| if b > 0.0 { 1.0 } else { 0.0 })
                    .collect()
            };
            let mut model = ctx.model.clone();
            let (_, stes) = finetune_trace(
                &mut model,
                &x,
                &y,
                &w,
                ctx.tasfar.learning_rate,
                epochs,
                ctx.tasfar.batch_size,
                5,
                |m| metrics::step_error(&m.predict(&adapt_ds.x), &adapt_ds.y),
            );
            curves.push(stes);
        }
    }
    for e in (0..epochs).step_by((epochs / 20).max(1)) {
        table.row(vec![
            format!("{e}"),
            f3(curves[0][e]),
            f3(curves[1][e]),
            f3(curves[2][e]),
            f3(curves[3][e]),
        ]);
    }
    table
}

/// The Fig. 13 early-stop rule applied offline to a loss curve: the first
/// epoch where the trailing-window improvement rate drops below 1 %.
pub fn early_stop_epoch(losses: &[f64], window: usize) -> Option<usize> {
    for e in (2 * window)..losses.len() {
        let recent = mean(&losses[e - window..e]);
        let previous = mean(&losses[e - 2 * window..e - window]);
        if previous > 0.0 && (previous - recent) / previous < 0.01 {
            return Some(e);
        }
    }
    None
}

/// Figure 13: adaptation learning curves and the early-stop points.
pub fn fig13(ctx: &PdrContext) -> Table {
    let epochs = ctx.tasfar.epochs.min(150);
    let mut table = Table::new(
        "Fig 13 learning curves (training loss vs epoch)",
        &["epoch", "user1_loss", "user2_loss"],
    );
    let mut all_losses = Vec::new();
    for user in ctx.world.seen_users.iter().take(2) {
        let (adapt_ds, _, _) = ctx.user_splits(user);
        let (x, y, weights) = tasfar_training_set(ctx, &adapt_ds);
        let mut model = ctx.model.clone();
        let (losses, _) = finetune_trace(
            &mut model,
            &x,
            &y,
            &weights,
            ctx.tasfar.learning_rate,
            epochs,
            ctx.tasfar.batch_size,
            5,
            |_| 0.0,
        );
        all_losses.push(losses);
    }
    for e in (0..epochs).step_by((epochs / 25).max(1)) {
        table.row(vec![
            format!("{e}"),
            f3(all_losses[0][e] * 1e3),
            f3(all_losses[1][e] * 1e3),
        ]);
    }
    let stops: Vec<String> = all_losses
        .iter()
        .map(|l| {
            early_stop_epoch(l, 8)
                .map(|e| e.to_string())
                .unwrap_or_else(|| "none".into())
        })
        .collect();
    table.row(vec![
        "early_stop".into(),
        stops[0].clone(),
        stops[1].clone(),
    ]);
    table
}

/// Figure 22: the two-user failure case. Balancing two users' data corrupts
/// the label distribution (double ring), so TASFAR degrades to a near-no-op
/// instead of helping — or hurting.
pub fn fig22(ctx: &PdrContext) -> Table {
    // Pick the two seen users with the most different stride means.
    let mut users: Vec<&PdrUser> = ctx.world.seen_users.iter().collect();
    users.sort_by(|a, b| a.profile.stride_mean.total_cmp(&b.profile.stride_mean));
    let slow = users[0];
    let fast = users[users.len() - 1];

    let mut table = Table::new(
        "Fig 22 failure case: balanced two-user target",
        &["condition", "ste_before", "ste_after", "reduction_%"],
    );

    // Individual adaptations for reference.
    for (label, user) in [("slow user alone", slow), ("fast user alone", fast)] {
        let (adapt_ds, _, _) = ctx.user_splits(user);
        let mut model = ctx.model.clone();
        let before = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);
        let _ = adapt(&mut model, &ctx.calib, &adapt_ds.x, &Mse, &ctx.tasfar);
        let after = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);
        table.row(vec![
            label.to_string(),
            f3(before),
            f3(after),
            f2(metrics::error_reduction_pct(before, after)),
        ]);
    }

    // Balanced mixture.
    let (a1, _, _) = ctx.user_splits(slow);
    let (a2, _, _) = ctx.user_splits(fast);
    let n = a1.len().min(a2.len());
    let idx: Vec<usize> = (0..n).collect();
    let mixed = Dataset::concat(&[&a1.subset(&idx), &a2.subset(&idx)]);
    let mut model = ctx.model.clone();
    let before = metrics::step_error(&model.predict(&mixed.x), &mixed.y);
    let outcome = adapt(&mut model, &ctx.calib, &mixed.x, &Mse, &ctx.tasfar)
        .expect("fig22: the balanced two-user mix must adapt");
    if let tasfar_core::adapt::BuiltMaps::Joint2d(map) = &outcome.maps {
        println!(
            "-- balanced two-user mix: estimated label density map (Fig. 22's double ring) --"
        );
        print!("{}", crate::viz::heatmap_2d(map, 48));
    }
    let after = metrics::step_error(&model.predict(&mixed.x), &mixed.y);
    table.row(vec![
        "balanced two-user mix".to_string(),
        f3(before),
        f3(after),
        f2(metrics::error_reduction_pct(before, after)),
    ]);
    table
}
