//! Multi-seed repetitions of the headline experiments.
//!
//! The paper repeats every experiment five times and reports the average
//! (Sec. IV-A). These targets rebuild the full world + source model +
//! comparison for several seeds and report mean ± std of the error
//! reductions, quantifying how much of each headline number is seed noise.

use crate::report::{f2, mean, std_dev, Table};
use crate::schemes::{run_scheme, Scheme, SchemeRun};
use crate::tasks::{
    housing_context_seeded, taxi_context_seeded, CrowdContext, Scale, TabularContext,
    TABULAR_SPLIT_AT,
};
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;
use tasfar_nn::rng::Rng;

/// Table I's test-set error reductions over `n_seeds` regenerated worlds.
pub fn table1_seeds(scale: Scale, n_seeds: u64) -> Table {
    let mut headers = vec!["scheme".to_string()];
    for s in 0..n_seeds {
        headers.push(format!("seed{s}_test_MAE_red_%"));
    }
    headers.push("mean".into());
    headers.push("std".into());
    let mut table = Table {
        title: "Table I over seeds (test MAE reduction %)".into(),
        headers,
        rows: Vec::new(),
    };

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); Scheme::all().len() - 1];
    for s in 0..n_seeds {
        let ctx = CrowdContext::build_seeded(scale, 23 + s * 101);
        let cmp = super::crowd_exp::compare(&ctx);
        let base: f64 = cmp.schemes[0]
            .per_scene
            .iter()
            .map(|e| e.test_mae)
            .sum::<f64>()
            / cmp.schemes[0].per_scene.len() as f64;
        for (k, r) in cmp.schemes.iter().skip(1).enumerate() {
            let mae: f64 =
                r.per_scene.iter().map(|e| e.test_mae).sum::<f64>() / r.per_scene.len() as f64;
            per_scheme[k].push(metrics::error_reduction_pct(base, mae));
        }
    }
    for (k, scheme) in Scheme::all().iter().skip(1).enumerate() {
        let mut row = vec![scheme.name().to_string()];
        for v in &per_scheme[k] {
            row.push(f2(*v));
        }
        row.push(f2(mean(&per_scheme[k])));
        row.push(f2(std_dev(&per_scheme[k])));
        table.row(row);
    }
    table
}

fn tabular_reductions(ctx: &TabularContext, rmsle: bool) -> Vec<f64> {
    let mut rng = Rng::new(77);
    let (adapt_ds, test_ds) = ctx.target.split_fraction(0.8, &mut rng);
    let eval = |m: &mut Sequential| {
        let p = m.predict(&test_ds.x);
        if rmsle {
            metrics::rmsle(&p, &test_ds.y)
        } else {
            metrics::mse(&p, &test_ds.y)
        }
    };
    let mut out = Vec::new();
    let mut base = None;
    for scheme in Scheme::all() {
        let run = SchemeRun {
            source_model: &ctx.model,
            source: &ctx.source,
            target_x: &adapt_ds.x,
            calib: &ctx.calib,
            tasfar: &ctx.tasfar,
            split_at: TABULAR_SPLIT_AT,
            loss: &Mse,
            seed: 7,
        };
        let mut adapted = run_scheme(scheme, &run);
        let err = eval(&mut adapted);
        match base {
            None => base = Some(err),
            Some(b) => out.push(metrics::error_reduction_pct(b, err)),
        }
    }
    out
}

/// Fig. 21's test-set error reductions over `n_seeds` regenerated worlds.
pub fn fig21_seeds(scale: Scale, n_seeds: u64) -> Table {
    let mut table = Table::new(
        "Fig 21 over seeds (test error reduction %, mean ± std)",
        &[
            "scheme",
            "housing_MSE_red_%",
            "housing_std",
            "taxi_RMSLE_red_%",
            "taxi_std",
        ],
    );
    let mut housing: Vec<Vec<f64>> = vec![Vec::new(); Scheme::all().len() - 1];
    let mut taxi: Vec<Vec<f64>> = vec![Vec::new(); Scheme::all().len() - 1];
    for s in 0..n_seeds {
        let h = housing_context_seeded(scale, 31 + s * 101);
        for (k, v) in tabular_reductions(&h, false).into_iter().enumerate() {
            housing[k].push(v);
        }
        let t = taxi_context_seeded(scale, 47 + s * 101);
        for (k, v) in tabular_reductions(&t, true).into_iter().enumerate() {
            taxi[k].push(v);
        }
    }
    for (k, scheme) in Scheme::all().iter().skip(1).enumerate() {
        table.row(vec![
            scheme.name().to_string(),
            f2(mean(&housing[k])),
            f2(std_dev(&housing[k])),
            f2(mean(&taxi[k])),
            f2(std_dev(&taxi[k])),
        ]);
    }
    table
}
