//! The two prediction tasks (Figure 21): California housing price (MSE)
//! and NYC taxi trip duration (RMSLE).

use crate::report::{f2, f4, Table};
use crate::schemes::{run_scheme, Scheme, SchemeRun};
use crate::tasks::{TabularContext, TABULAR_SPLIT_AT};
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;
use tasfar_nn::rng::Rng;

/// Which error metric a tabular task reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TabularMetric {
    /// Mean squared error (housing).
    Mse,
    /// Root mean squared logarithmic error (taxi).
    Rmsle,
}

impl TabularMetric {
    fn eval(self, pred: &tasfar_nn::tensor::Tensor, y: &tasfar_nn::tensor::Tensor) -> f64 {
        match self {
            TabularMetric::Mse => metrics::mse(pred, y),
            TabularMetric::Rmsle => metrics::rmsle(pred, y),
        }
    }

    fn name(self) -> &'static str {
        match self {
            TabularMetric::Mse => "MSE",
            TabularMetric::Rmsle => "RMSLE",
        }
    }
}

/// Figure 21 for one prediction task: every scheme's error on the target
/// adaptation and test splits, with reductions against the baseline.
pub fn fig21_task(ctx: &TabularContext, metric: TabularMetric) -> Table {
    let mut rng = Rng::new(77);
    let (adapt_ds, test_ds) = ctx.target.split_fraction(0.8, &mut rng);

    let mut table = Table::new(
        format!("Fig 21 {} ({})", ctx.name, metric.name()),
        &[
            "scheme",
            "adapt_err",
            "adapt_red_%",
            "test_err",
            "test_red_%",
        ],
    );
    let mut baseline: Option<(f64, f64)> = None;
    for scheme in Scheme::all() {
        let run = SchemeRun {
            source_model: &ctx.model,
            source: &ctx.source,
            target_x: &adapt_ds.x,
            calib: &ctx.calib,
            tasfar: &ctx.tasfar,
            split_at: TABULAR_SPLIT_AT,
            loss: &Mse,
            seed: 7,
        };
        let mut adapted = run_scheme(scheme, &run);
        let e_adapt = metric.eval(&adapted.predict(&adapt_ds.x), &adapt_ds.y);
        let e_test = metric.eval(&adapted.predict(&test_ds.x), &test_ds.y);
        let (ra, rt) = match baseline {
            None => {
                baseline = Some((e_adapt, e_test));
                (0.0, 0.0)
            }
            Some((ba, bt)) => (
                metrics::error_reduction_pct(ba, e_adapt),
                metrics::error_reduction_pct(bt, e_test),
            ),
        };
        table.row(vec![
            scheme.name().to_string(),
            f4(e_adapt),
            f2(ra),
            f4(e_test),
            f2(rt),
        ]);
    }
    table
}
