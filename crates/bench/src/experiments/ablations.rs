//! Ablations of the design choices DESIGN.md §4 calls out (beyond the
//! paper's own Fig. 8/12 ablations, which live in `pdr_params`/`pdr_adapt`):
//!
//! * joint 2-D density map vs independent per-dimension maps (the paper's
//!   Sec. III-D suggests independence for simplicity; Fig. 6's rings suggest
//!   the joint map carries real structure);
//! * confident-data replay on/off (the catastrophic-forgetting guard);
//! * early stopping on the loss-drop rate vs the full epoch budget.

use crate::report::{f2, f3, mean, Table};
use crate::tasks::PdrContext;
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

fn tasfar_variant(
    ctx: &PdrContext,
    mutate: impl Fn(&mut TasfarConfig),
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    // Returns per-user (STE reduction % on adapt, STE reduction % on test,
    // STE reduction % on the *confident* subset — the forgetting probe).
    let mut adapt_red = Vec::new();
    let mut test_red = Vec::new();
    let mut confident_red = Vec::new();
    for user in &ctx.world.seen_users {
        let (adapt_ds, test_ds, _) = ctx.user_splits(user);
        let mut cfg = ctx.tasfar.clone();
        mutate(&mut cfg);
        let mut model = ctx.model.clone();
        let before_adapt = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);
        let before_test = metrics::step_error(&model.predict(&test_ds.x), &test_ds.y);
        let outcome = adapt(&mut model, &ctx.calib, &adapt_ds.x, &Mse, &cfg)
            .expect("the ablation's adaptation batch must adapt");
        let after_adapt = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);
        let after_test = metrics::step_error(&model.predict(&test_ds.x), &test_ds.y);
        adapt_red.push(metrics::error_reduction_pct(before_adapt, after_adapt));
        test_red.push(metrics::error_reduction_pct(before_test, after_test));
        // Forgetting probe: STE on the confident subset only.
        if !outcome.split.confident.is_empty() {
            let cx = adapt_ds.x.select_rows(&outcome.split.confident);
            let cy = adapt_ds.y.select_rows(&outcome.split.confident);
            let mut src = ctx.model.clone();
            let before_c = metrics::step_error(&src.predict(&cx), &cy);
            let after_c = metrics::step_error(&model.predict(&cx), &cy);
            confident_red.push(metrics::error_reduction_pct(before_c, after_c));
        }
    }
    (adapt_red, test_red, confident_red)
}

/// Joint 2-D map vs independent per-dimension maps.
pub fn ablation_joint(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Ablation joint vs per-dim density maps (seen group)",
        &["variant", "adapt_red_%", "test_red_%"],
    );
    for (label, joint) in [("joint 2-D map", true), ("independent per-dim", false)] {
        let (a, t, _) = tasfar_variant(ctx, |cfg| cfg.joint_2d = joint);
        table.row(vec![label.to_string(), f2(mean(&a)), f2(mean(&t))]);
    }
    table
}

/// Confident-data replay on/off: the catastrophic-forgetting guard.
pub fn ablation_replay(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Ablation confident-data replay (seen group)",
        &["variant", "adapt_red_%", "confident_subset_red_%"],
    );
    for (label, replay) in [("with replay", true), ("without replay", false)] {
        let (a, _, c) = tasfar_variant(ctx, |cfg| cfg.replay_confident = replay);
        table.row(vec![label.to_string(), f2(mean(&a)), f2(mean(&c))]);
    }
    table
}

/// Early stopping on the loss-drop rate vs the full epoch budget.
pub fn ablation_early_stop(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Ablation early stopping (seen group)",
        &["variant", "adapt_red_%", "test_red_%", "mean_epochs"],
    );
    for (label, early) in [("loss-rate early stop", true), ("full budget", false)] {
        let mut epochs_used = Vec::new();
        let (a, t, _) = {
            // Track epochs by re-running with the same mutation plus a probe.
            let mut adapt_red = Vec::new();
            let mut test_red = Vec::new();
            for user in &ctx.world.seen_users {
                let (adapt_ds, test_ds, _) = ctx.user_splits(user);
                let mut cfg = ctx.tasfar.clone();
                if !early {
                    cfg.early_stop = None;
                }
                let mut model = ctx.model.clone();
                let before_adapt = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);
                let before_test = metrics::step_error(&model.predict(&test_ds.x), &test_ds.y);
                let outcome = adapt(&mut model, &ctx.calib, &adapt_ds.x, &Mse, &cfg)
                    .expect("the ablation's adaptation batch must adapt");
                epochs_used.push(outcome.fit.epoch_losses.len() as f64);
                adapt_red.push(metrics::error_reduction_pct(
                    before_adapt,
                    metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y),
                ));
                test_red.push(metrics::error_reduction_pct(
                    before_test,
                    metrics::step_error(&model.predict(&test_ds.x), &test_ds.y),
                ));
            }
            (adapt_red, test_red, Vec::<f64>::new())
        };
        table.row(vec![
            label.to_string(),
            f2(mean(&a)),
            f2(mean(&t)),
            f3(mean(&epochs_used)),
        ]);
    }
    table
}

/// Scenario-level τ rescaling on/off (reproduction decision #3 in
/// DESIGN.md §1b): quantile matching prevents users with uniformly
/// elevated uncertainty (large displacement magnitudes) from being
/// wholesale-classified uncertain.
pub fn ablation_tau_rescale(ctx: &PdrContext) -> Table {
    let mut table = Table::new(
        "Ablation scenario tau rescaling (seen group)",
        &[
            "variant",
            "adapt_red_%",
            "test_red_%",
            "mean_uncertain_ratio",
        ],
    );
    for (label, rescale) in [("with rescaling", true), ("without rescaling", false)] {
        let mut ratios = Vec::new();
        let mut adapt_red = Vec::new();
        let mut test_red = Vec::new();
        for user in &ctx.world.seen_users {
            let (adapt_ds, test_ds, _) = ctx.user_splits(user);
            let mut cfg = ctx.tasfar.clone();
            cfg.scenario_tau_rescale = rescale;
            let mut model = ctx.model.clone();
            let before_adapt = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);
            let before_test = metrics::step_error(&model.predict(&test_ds.x), &test_ds.y);
            let outcome = adapt(&mut model, &ctx.calib, &adapt_ds.x, &Mse, &cfg)
                .expect("the ablation's adaptation batch must adapt");
            ratios.push(outcome.split.uncertain_ratio());
            adapt_red.push(metrics::error_reduction_pct(
                before_adapt,
                metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y),
            ));
            test_red.push(metrics::error_reduction_pct(
                before_test,
                metrics::step_error(&model.predict(&test_ds.x), &test_ds.y),
            ));
        }
        table.row(vec![
            label.to_string(),
            f2(mean(&adapt_red)),
            f2(mean(&test_red)),
            f3(mean(&ratios)),
        ]);
    }
    table
}

/// Uncertainty-estimator quality: MC dropout (the paper's choice) vs a deep
/// ensemble (the standard stronger alternative; the paper treats the
/// estimator as pluggable). Reports, per estimator, the Pearson correlation
/// between uncertainty and prediction error pooled over seen users, and the
/// error ratio between the flagged-uncertain and confident subsets — the
/// two properties TASFAR's pipeline depends on.
pub fn ablation_uncertainty(ctx: &PdrContext) -> Table {
    use tasfar_bench_ensemble::build_pdr_ensemble;
    let mut table = Table::new(
        "Ablation uncertainty estimator (MC dropout vs deep ensemble)",
        &[
            "estimator",
            "corr(u, error)",
            "unc/conf error ratio",
            "uncertain_%",
        ],
    );

    let mut ensemble = build_pdr_ensemble(ctx, 4);
    for estimator in ["mc_dropout", "ensemble"] {
        let mut us = Vec::new();
        let mut errs = Vec::new();
        for user in &ctx.world.seen_users {
            let (adapt_ds, _, _) = ctx.user_splits(user);
            let mc = match estimator {
                "mc_dropout" => {
                    let mut model = ctx.model.clone();
                    McDropout::new(ctx.tasfar.mc_samples)
                        .relative(ctx.tasfar.relative_uncertainty)
                        .predict(&mut model, &adapt_ds.x)
                }
                _ => ensemble.predict(&adapt_ds.x),
            };
            for i in 0..adapt_ds.len() {
                us.push(mc.uncertainty[i]);
                errs.push(
                    ((mc.point.get(i, 0) - adapt_ds.y.get(i, 0)).powi(2)
                        + (mc.point.get(i, 1) - adapt_ds.y.get(i, 1)).powi(2))
                    .sqrt(),
                );
            }
        }
        let corr = metrics::pearson(&us, &errs);
        // Split at the pooled 90th percentile of u.
        let mut sorted = us.clone();
        sorted.sort_by(f64::total_cmp);
        let tau = sorted[(sorted.len() as f64 * 0.9) as usize];
        let (mut eu, mut nu, mut ec, mut nc) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
        for (&u, &e) in us.iter().zip(&errs) {
            if u > tau {
                eu += e;
                nu += 1.0;
            } else {
                ec += e;
                nc += 1.0;
            }
        }
        let ratio = (eu / nu.max(1.0)) / (ec / nc.max(1.0)).max(1e-12);
        table.row(vec![
            estimator.to_string(),
            f3(corr),
            f3(ratio),
            f2(100.0 * nu / (nu + nc)),
        ]);
    }
    table
}

/// Ensemble construction for the PDR task, isolated so the ablation stays
/// readable: trains `k` fresh source models from different initialisations
/// on the same source data.
mod tasfar_bench_ensemble {
    use super::*;
    use tasfar_core::uncertainty::Ensemble;

    pub fn build_pdr_ensemble(ctx: &PdrContext, k: usize) -> Ensemble<Sequential> {
        let source = ctx.scaled_source();
        let members: Vec<Sequential> = (0..k)
            .map(|m| {
                let mut rng = Rng::new(0xe45 + m as u64 * 7919);
                let mut model = crate::tasks::pdr_model(&ctx.world.config, &mut rng);
                let mut opt = Adam::new(1e-3);
                let _ = fit(
                    &mut model,
                    &mut opt,
                    &Mse,
                    &source.x,
                    &source.y,
                    None,
                    &TrainConfig {
                        epochs: 60,
                        batch_size: 64,
                        seed: m as u64,
                        ..TrainConfig::default()
                    },
                );
                model
            })
            .collect();
        Ensemble::new(members)
    }
}
