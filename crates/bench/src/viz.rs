//! Terminal visualisation of density maps and histograms.
//!
//! The paper's Figs. 2, 6 and 22 are images; a CLI reproduction renders
//! them as Unicode intensity maps so the ring shapes, clusters, and the
//! two-user double ring are visible directly in the experiment output.

use tasfar_core::density::{DensityMap1d, DensityMap2d};

/// Intensity ramp from empty to dense.
const RAMP: [char; 10] = [' ', '·', ':', '-', '=', '+', '*', '#', '%', '@'];

fn ramp_char(value: f64, max: f64) -> char {
    if max <= 0.0 || value <= 0.0 {
        return RAMP[0];
    }
    let idx = ((value / max) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// Renders a 2-D density map as a Unicode heatmap, one character per cell
/// (y grows upward, matching a conventional plot). Wide maps are downsampled
/// by cell-block max-pooling to fit `max_cols` columns.
pub fn heatmap_2d(map: &DensityMap2d, max_cols: usize) -> String {
    let nx = map.xspec.bins;
    let ny = map.yspec.bins;
    let stride = nx.div_ceil(max_cols.max(1)).max(1);
    let peak = map.masses().iter().copied().fold(0.0_f64, f64::max);

    let mut out = String::new();
    let mut iy = ny;
    while iy > 0 {
        let y_hi = iy;
        let y_lo = y_hi.saturating_sub(stride);
        let mut line = String::new();
        let mut ix = 0;
        while ix < nx {
            // Block max over the (stride × stride) cell group.
            let mut block = 0.0_f64;
            for by in y_lo..y_hi {
                for bx in ix..(ix + stride).min(nx) {
                    block = block.max(map.mass(bx, by));
                }
            }
            line.push(ramp_char(block, peak));
            ix += stride;
        }
        out.push_str(line.trim_end());
        out.push('\n');
        iy = y_lo;
    }
    // Axis footer.
    out.push_str(&format!(
        "x: [{:.2}, {:.2}]  y: [{:.2}, {:.2}]  peak cell mass {:.4}\n",
        map.xspec.origin,
        map.xspec.origin + map.xspec.span(),
        map.yspec.origin,
        map.yspec.origin + map.yspec.span(),
        peak
    ));
    out
}

/// Renders a 1-D density map as a horizontal bar chart (one row per cell
/// group), downsampled to at most `max_rows` rows.
pub fn histogram_1d(map: &DensityMap1d, max_rows: usize, bar_width: usize) -> String {
    let bins = map.spec.bins;
    let stride = bins.div_ceil(max_rows.max(1)).max(1);
    // Aggregate per group.
    let mut groups: Vec<(f64, f64)> = Vec::new(); // (centre, mass)
    let mut i = 0;
    while i < bins {
        let hi = (i + stride).min(bins);
        let mass: f64 = (i..hi).map(|b| map.mass(b)).sum();
        let centre = (map.spec.center(i) + map.spec.center(hi - 1)) / 2.0;
        groups.push((centre, mass));
        i = hi;
    }
    let peak = groups.iter().map(|g| g.1).fold(0.0_f64, f64::max);
    let mut out = String::new();
    for (centre, mass) in groups {
        let filled = if peak > 0.0 {
            ((mass / peak) * bar_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{centre:>8.3} |{}{} {mass:.4}\n",
            "█".repeat(filled),
            " ".repeat(bar_width - filled.min(bar_width)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasfar_core::density::GridSpec;
    use tasfar_nn::rng::Rng;
    use tasfar_nn::tensor::Tensor;

    fn ring_map() -> DensityMap2d {
        let mut rng = Rng::new(1);
        let mut rows = Vec::new();
        for _ in 0..20_000 {
            let theta = rng.uniform(0.0, std::f64::consts::TAU);
            let r = rng.gaussian(0.7, 0.04);
            rows.push(vec![r * theta.cos(), r * theta.sin()]);
        }
        DensityMap2d::from_labels(
            &Tensor::from_rows(&rows),
            GridSpec::from_range(-1.0, 1.0, 0.05),
            GridSpec::from_range(-1.0, 1.0, 0.05),
        )
    }

    #[test]
    fn heatmap_shows_a_ring() {
        let map = ring_map();
        let art = heatmap_2d(&map, 40);
        // The centre of the ring is empty, the ring itself dense: the output
        // must contain both blank and peak characters.
        assert!(art.contains('@'));
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines.len() > 10);
        // Middle row: dense at the edges of the ring, hollow in the centre.
        let mid = lines[lines.len() / 2];
        let trimmed: Vec<char> = mid.chars().collect();
        if trimmed.len() > 10 {
            let centre = trimmed[trimmed.len() / 2];
            assert!(
                centre == ' ' || centre == '·',
                "ring centre should be (nearly) empty, got {centre:?}"
            );
        }
    }

    #[test]
    fn heatmap_respects_max_cols() {
        let map = ring_map();
        let art = heatmap_2d(&map, 20);
        for line in art.lines().take_while(|l| !l.starts_with("x:")) {
            assert!(line.chars().count() <= 20, "line too wide: {line:?}");
        }
    }

    #[test]
    fn histogram_bar_lengths_track_mass() {
        let labels: Vec<f64> = (0..1000)
            .map(|i| if i % 10 == 0 { 2.0 } else { 1.0 })
            .collect();
        let map = DensityMap1d::from_labels(&labels, GridSpec::from_range(0.0, 3.0, 1.0));
        let art = histogram_1d(&map, 10, 30);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        let bars: Vec<usize> = lines
            .iter()
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        // Bin [1,2) holds 90 % of the labels → longest bar; [0,1) is empty.
        assert_eq!(bars[0], 0);
        assert!(bars[1] > bars[2]);
        assert_eq!(bars[1], 30);
    }

    #[test]
    fn empty_map_renders_blank() {
        let map = DensityMap1d::from_labels(&[100.0], GridSpec::from_range(0.0, 1.0, 0.5));
        // Label off-grid → zero mass everywhere → no panic, blank bars.
        let art = histogram_1d(&map, 4, 10);
        assert!(art.lines().all(|l| !l.contains('█')));
    }
}
