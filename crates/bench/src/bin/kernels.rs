//! Dependency-free micro-benchmarks of the TASFAR hot-path kernels.
//!
//! Replaces the former Criterion benches (the build environment has no
//! crates.io access). Each kernel is timed with a warmup phase followed by
//! `TASFAR_BENCH_SAMPLES` (default 9) timed samples; the reported figure is
//! the median ns/iteration, alongside the total wall time spent in the timed
//! samples and the warmup iteration count. Every kernel runs once with the
//! parallel runtime pinned to 1 thread and once at 4 threads, and the
//! 4-thread row carries its speedup over the 1-thread baseline. On a
//! single-CPU host the >1-thread rows are tagged `thread_scaling_na`: the
//! speedup figure is still computed but measures scheduling overhead, not
//! scaling.
//!
//! The binary also audits the zero-allocation contract: a counting global
//! allocator measures heap allocations across steady-state `train_step` +
//! fused MC-dropout iterations (expected: 0 at one thread) and reports them
//! as the `alloc.hot_path` gauge, next to the scratch-arena counters.
//!
//! Run with: `cargo run --release -p tasfar-bench --bin kernels`
//!
//! Results are written to `BENCH_kernels.json` in the working directory
//! (git-tracked at the repo root), including the host's CPU count — the
//! speedups are only meaningful relative to it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;
use tasfar_core::density::{DensityMap1d, GridSpec};
use tasfar_core::uncertainty::{McDropout, McPrediction};
use tasfar_nn::json::Json;
use tasfar_nn::layers::{Conv1d, Dense, Dropout, Layer, Mode, Relu, Sequential, TcnBlock};
use tasfar_nn::parallel;
use tasfar_nn::prelude::{train_step, Adam, Init, Mse, Scratch};
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// Counts heap acquisitions (`alloc` + `realloc`) on this thread, for the
/// hot-path allocation audit. Deallocations are not counted.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// One benchmark result row.
struct Row {
    kernel: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: f64,
    /// Total wall time across the timed samples, nanoseconds.
    wall_ns_total: f64,
    /// Untimed iterations run before sampling started.
    warmup_iters: usize,
}

/// Times `f` (already warmed up) and returns the median ns/call over
/// `samples` samples of `iters` calls each, plus the total wall time spent.
fn time_median(samples: usize, iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut total = 0.0f64;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let ns = t0.elapsed().as_nanos() as f64;
            total += ns;
            ns / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    (per_iter[per_iter.len() / 2], total)
}

fn bench(
    rows: &mut Vec<Row>,
    kernel: &'static str,
    size: &str,
    threads: usize,
    samples: usize,
    iters: usize,
    mut f: impl FnMut(),
) {
    parallel::set_threads(threads);
    // Warmup: one sample's worth, untimed.
    for _ in 0..iters {
        f();
    }
    let (ns, wall) = time_median(samples, iters, &mut f);
    println!(
        "{kernel:>16} {size:<14} threads={threads}  {:>12.0} ns/iter",
        ns
    );
    rows.push(Row {
        kernel,
        size: size.to_string(),
        threads,
        ns_per_iter: ns,
        wall_ns_total: wall,
        warmup_iters: iters,
    });
}

fn mc_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(8, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 1, Init::XavierUniform, rng))
}

fn main() {
    let samples: usize = std::env::var("TASFAR_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let quick = std::env::var("TASFAR_BENCH_QUICK").is_ok();
    // `available_parallelism` respects cgroup/affinity limits and reports 1
    // in constrained containers; `host_cpus` cross-checks /proc/cpuinfo so
    // the recorded figure matches the hardware the speedups ran on.
    let cpus = tasfar_obs::host_cpus();
    println!(
        "host cpus: {cpus}; samples per point: {samples}{}",
        if quick { " (quick)" } else { "" }
    );

    let mut rng = Rng::new(0x8E2C);
    let mut rows: Vec<Row> = Vec::new();
    let thread_counts = [1usize, 4];

    // --- matmul m×k×n ----------------------------------------------------
    for &n in &[32usize, 128, 256] {
        let a = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let iters = if quick {
            1
        } else {
            (256 / n).max(1) * (256 / n).max(1)
        };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "matmul",
                &format!("{n}x{n}x{n}"),
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(a.matmul(&b));
                },
            );
        }
    }

    // --- conv1d forward / backward --------------------------------------
    {
        let (in_ch, out_ch, k, t_len, batch) = (6, 16, 3, 20, 64);
        let mut conv = Conv1d::new(in_ch, out_ch, k, 1, t_len, &mut rng);
        let x = Tensor::rand_normal(batch, in_ch * t_len, 0.0, 1.0, &mut rng);
        let g = Tensor::rand_normal(batch, out_ch * t_len, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 8 };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "conv1d_fwd",
                "6->16 k3 t20 b64",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(conv.forward(&x, Mode::Train));
                },
            );
        }
        for &t in &thread_counts {
            let _ = conv.forward(&x, Mode::Train);
            bench(
                &mut rows,
                "conv1d_bwd",
                "6->16 k3 t20 b64",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(conv.backward(&g));
                },
            );
        }
    }

    // --- TCN block forward ----------------------------------------------
    {
        let mut block = TcnBlock::new(6, 16, 3, 2, 20, 0.1, &mut rng);
        let x = Tensor::rand_normal(64, 6 * 20, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 4 };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "tcn_fwd",
                "6->16 k3 d2 t20",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(block.forward(&x, Mode::Eval));
                },
            );
        }
    }

    // --- MC-dropout (T = 20), per-pass vs fused ---------------------------
    // `mc_dropout` is the reference per-pass estimator; `mc_dropout_fused`
    // runs the same 20 passes as one stacked batched forward into a reused
    // out-parameter (the production path behind `McDropout::predict`). The
    // two are bit-identical (pinned by `tasfar-core/tests/fused_mc.rs`), so
    // the gap between the rows is pure overhead removed.
    {
        let x = Tensor::rand_normal(128, 8, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 2 };
        for &t in &thread_counts {
            let mut model = mc_model(&mut Rng::new(7));
            bench(
                &mut rows,
                "mc_dropout",
                "T=20 b128 mlp64",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(McDropout::new(20).predict_unfused(&mut model, &x));
                },
            );
        }
        for &t in &thread_counts {
            let mut model = mc_model(&mut Rng::new(7));
            let est = McDropout::new(20);
            let mut out = McPrediction::empty();
            bench(
                &mut rows,
                "mc_dropout_fused",
                "T=20 b128 mlp64",
                t,
                samples,
                iters,
                || {
                    est.predict_into(&mut model, &x, &mut out);
                    std::hint::black_box(&mut out);
                },
            );
        }
    }

    // --- one full training step ------------------------------------------
    {
        let iters = if quick { 1 } else { 4 };
        for &t in &thread_counts {
            let mut step_rng = Rng::new(11);
            let mut model = mc_model(&mut step_rng);
            let mut opt = Adam::new(1e-4);
            let x = Tensor::rand_normal(128, 8, 0.0, 1.0, &mut step_rng);
            let y = Tensor::rand_normal(128, 1, 0.0, 1.0, &mut step_rng);
            let mut scratch = Scratch::new();
            bench(
                &mut rows,
                "train_step",
                "b128 mlp64",
                t,
                samples,
                iters,
                || {
                    let loss = train_step(
                        &mut model,
                        &mut opt,
                        &Mse,
                        &x,
                        &y,
                        None,
                        Mode::Train,
                        0,
                        &mut scratch,
                    )
                    .expect("bench train_step");
                    std::hint::black_box(loss);
                },
            );
        }
    }

    // --- KDE density estimation ------------------------------------------
    {
        let preds: Vec<f64> = (0..512).map(|_| rng.gaussian(0.0, 2.0)).collect();
        let sigmas: Vec<f64> = (0..512).map(|_| rng.uniform(0.05, 0.4)).collect();
        let iters = if quick { 1 } else { 4 };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "density_1d",
                "n512 cell0.05",
                t,
                samples,
                iters,
                || {
                    let spec = GridSpec::from_range(-10.0, 10.0, 0.05);
                    std::hint::black_box(DensityMap1d::estimate(
                        &preds,
                        &sigmas,
                        spec,
                        tasfar_core::calibration::ErrorModel::Gaussian,
                    ));
                },
            );
        }
    }

    // --- hot-path allocation audit ----------------------------------------
    // With the arena warm and one thread pinned, steady-state train_step and
    // fused MC-dropout iterations must not touch the heap. The same contract
    // is enforced test-side by the `alloc_audit` suites; here it is recorded
    // into the result file as provenance for the numbers above.
    let hot_path_allocs = {
        parallel::set_threads(1);
        let mut audit_rng = Rng::new(13);
        let mut model = mc_model(&mut audit_rng);
        let mut opt = Adam::new(1e-4);
        let x = Tensor::rand_normal(64, 8, 0.0, 1.0, &mut audit_rng);
        let y = Tensor::rand_normal(64, 1, 0.0, 1.0, &mut audit_rng);
        let mut scratch = Scratch::new();
        let est = McDropout::new(20);
        let mut out = McPrediction::empty();
        for _ in 0..3 {
            train_step(
                &mut model,
                &mut opt,
                &Mse,
                &x,
                &y,
                None,
                Mode::Train,
                0,
                &mut scratch,
            )
            .expect("audit train_step");
            est.predict_into(&mut model, &x, &mut out);
        }
        let before = alloc_count();
        for _ in 0..5 {
            train_step(
                &mut model,
                &mut opt,
                &Mse,
                &x,
                &y,
                None,
                Mode::Train,
                0,
                &mut scratch,
            )
            .expect("audit train_step");
            est.predict_into(&mut model, &x, &mut out);
        }
        let allocs = alloc_count() - before;
        println!("hot-path allocations over 5 steady-state iterations: {allocs}");
        tasfar_obs::metrics::gauge("alloc.hot_path").set(allocs as i64);
        allocs
    };

    parallel::reset_threads();

    // --- span guard off-state overhead ------------------------------------
    // The telemetry contract says an untraced `span()` costs one atomic
    // load; hold it to a 50 ns/op budget in release builds. Skipped when
    // `TASFAR_TRACE` is live — an enabled span legitimately pays for I/O.
    if !tasfar_obs::enabled() {
        let iters = if quick { 10_000 } else { 1_000_000 };
        for _ in 0..iters {
            std::hint::black_box(tasfar_obs::span("bench.noop"));
        }
        let (ns, wall) = time_median(samples, iters, || {
            std::hint::black_box(tasfar_obs::span("bench.noop"));
        });
        println!(
            "{:>16} {:<14} threads=1  {ns:>12.1} ns/iter",
            "span_off", "disabled"
        );
        rows.push(Row {
            kernel: "span_off",
            size: "disabled".to_string(),
            threads: 1,
            ns_per_iter: ns,
            wall_ns_total: wall,
            warmup_iters: iters,
        });
        assert!(
            cfg!(debug_assertions) || ns < 50.0,
            "span guard off-state overhead {ns:.1} ns/op exceeds the 50 ns budget"
        );
    }

    // --- self-checks -------------------------------------------------------
    // The fused MC path exists to be faster than the per-pass one on the
    // same host in the same run; regressing that is a bench failure, not a
    // number to record. (Debug builds are exempt: they measure the
    // allocator, not the kernels.)
    let ns_of = |kernel: &str| {
        rows.iter()
            .find(|r| r.kernel == kernel && r.threads == 1)
            .map(|r| r.ns_per_iter)
            .expect("kernel row missing")
    };
    let (unfused, fused) = (ns_of("mc_dropout"), ns_of("mc_dropout_fused"));
    println!(
        "mc_dropout fused speedup at 1 thread: {:.2}x",
        unfused / fused
    );
    assert!(
        cfg!(debug_assertions) || fused < unfused,
        "fused MC-dropout ({fused:.0} ns) must beat the per-pass path ({unfused:.0} ns)"
    );
    assert!(
        cfg!(debug_assertions) || hot_path_allocs == 0,
        "steady-state hot path performed {hot_path_allocs} heap allocations"
    );

    // --- report -----------------------------------------------------------
    tasfar_obs::sync_arena_metrics();
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            let baseline = rows
                .iter()
                .find(|b| b.kernel == r.kernel && b.size == r.size && b.threads == 1)
                .map(|b| b.ns_per_iter)
                .unwrap_or(r.ns_per_iter);
            let mut pairs = vec![
                ("kernel", Json::from(r.kernel)),
                ("size", Json::from(r.size.clone())),
                ("threads", Json::from(r.threads)),
                ("ns_per_iter", Json::Num(r.ns_per_iter)),
                ("wall_ns_total", Json::Num(r.wall_ns_total)),
                ("warmup_iters", Json::from(r.warmup_iters)),
                ("speedup_vs_1_thread", Json::Num(baseline / r.ns_per_iter)),
            ];
            // On a single-CPU host a >1-thread run cannot scale; tag the row
            // so consumers don't read scheduling overhead as a regression.
            if cpus == 1 && r.threads > 1 {
                pairs.push(("thread_scaling_na", Json::Bool(true)));
            }
            Json::obj(pairs)
        })
        .collect();
    let doc = Json::obj(vec![
        ("host_cpus", Json::from(cpus)),
        ("samples_per_point", Json::from(samples)),
        ("results", Json::Arr(results)),
        ("alloc_hot_path", Json::from(hot_path_allocs)),
        ("arena", tasfar_obs::arena_stats_json()),
        ("parallel_pool", tasfar_obs::pool_stats_json()),
    ]);
    std::fs::write("BENCH_kernels.json", format!("{doc}\n")).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json ({} rows)", rows.len());
}
