//! Dependency-free micro-benchmarks of the TASFAR hot-path kernels.
//!
//! Replaces the former Criterion benches (the build environment has no
//! crates.io access). Each kernel is timed with a warmup phase followed by
//! `TASFAR_BENCH_SAMPLES` (default 9) timed samples; the reported figure is
//! the median ns/iteration. Every kernel runs once with the parallel runtime
//! pinned to 1 thread and once at 4 threads, and the 4-thread row carries
//! its speedup over the 1-thread baseline.
//!
//! Run with: `cargo run --release -p tasfar-bench --bin kernels`
//!
//! Results are written to `BENCH_kernels.json` in the working directory
//! (git-tracked at the repo root), including the host's CPU count — the
//! speedups are only meaningful relative to it.

use std::time::Instant;
use tasfar_core::density::{DensityMap1d, GridSpec};
use tasfar_core::uncertainty::McDropout;
use tasfar_nn::json::Json;
use tasfar_nn::layers::{Conv1d, Dense, Dropout, Layer, Mode, Relu, Sequential, TcnBlock};
use tasfar_nn::parallel;
use tasfar_nn::prelude::Init;
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// One benchmark result row.
struct Row {
    kernel: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: f64,
}

/// Times `f` (already warmed up) and returns the median ns/call over
/// `samples` samples of `iters` calls each.
fn time_median(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

fn bench(
    rows: &mut Vec<Row>,
    kernel: &'static str,
    size: &str,
    threads: usize,
    samples: usize,
    iters: usize,
    mut f: impl FnMut(),
) {
    parallel::set_threads(threads);
    // Warmup: one sample's worth, untimed.
    for _ in 0..iters {
        f();
    }
    let ns = time_median(samples, iters, &mut f);
    println!(
        "{kernel:>12} {size:<14} threads={threads}  {:>12.0} ns/iter",
        ns
    );
    rows.push(Row {
        kernel,
        size: size.to_string(),
        threads,
        ns_per_iter: ns,
    });
}

fn mc_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(8, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 1, Init::XavierUniform, rng))
}

fn main() {
    let samples: usize = std::env::var("TASFAR_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let quick = std::env::var("TASFAR_BENCH_QUICK").is_ok();
    // `available_parallelism` respects cgroup/affinity limits and reports 1
    // in constrained containers; `host_cpus` cross-checks /proc/cpuinfo so
    // the recorded figure matches the hardware the speedups ran on.
    let cpus = tasfar_obs::host_cpus();
    println!(
        "host cpus: {cpus}; samples per point: {samples}{}",
        if quick { " (quick)" } else { "" }
    );

    let mut rng = Rng::new(0x8E2C);
    let mut rows: Vec<Row> = Vec::new();
    let thread_counts = [1usize, 4];

    // --- matmul m×k×n ----------------------------------------------------
    for &n in &[32usize, 128, 256] {
        let a = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let iters = if quick {
            1
        } else {
            (256 / n).max(1) * (256 / n).max(1)
        };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "matmul",
                &format!("{n}x{n}x{n}"),
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(a.matmul(&b));
                },
            );
        }
    }

    // --- conv1d forward / backward --------------------------------------
    {
        let (in_ch, out_ch, k, t_len, batch) = (6, 16, 3, 20, 64);
        let mut conv = Conv1d::new(in_ch, out_ch, k, 1, t_len, &mut rng);
        let x = Tensor::rand_normal(batch, in_ch * t_len, 0.0, 1.0, &mut rng);
        let g = Tensor::rand_normal(batch, out_ch * t_len, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 8 };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "conv1d_fwd",
                "6->16 k3 t20 b64",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(conv.forward(&x, Mode::Train));
                },
            );
        }
        for &t in &thread_counts {
            let _ = conv.forward(&x, Mode::Train);
            bench(
                &mut rows,
                "conv1d_bwd",
                "6->16 k3 t20 b64",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(conv.backward(&g));
                },
            );
        }
    }

    // --- TCN block forward ----------------------------------------------
    {
        let mut block = TcnBlock::new(6, 16, 3, 2, 20, 0.1, &mut rng);
        let x = Tensor::rand_normal(64, 6 * 20, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 4 };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "tcn_fwd",
                "6->16 k3 d2 t20",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(block.forward(&x, Mode::Eval));
                },
            );
        }
    }

    // --- MC-dropout (T = 20) ---------------------------------------------
    {
        let x = Tensor::rand_normal(128, 8, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 2 };
        for &t in &thread_counts {
            let mut model = mc_model(&mut Rng::new(7));
            bench(
                &mut rows,
                "mc_dropout",
                "T=20 b128 mlp64",
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(McDropout::new(20).predict(&mut model, &x));
                },
            );
        }
    }

    // --- KDE density estimation ------------------------------------------
    {
        let preds: Vec<f64> = (0..512).map(|_| rng.gaussian(0.0, 2.0)).collect();
        let sigmas: Vec<f64> = (0..512).map(|_| rng.uniform(0.05, 0.4)).collect();
        let iters = if quick { 1 } else { 4 };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "density_1d",
                "n512 cell0.05",
                t,
                samples,
                iters,
                || {
                    let spec = GridSpec::from_range(-10.0, 10.0, 0.05);
                    std::hint::black_box(DensityMap1d::estimate(
                        &preds,
                        &sigmas,
                        spec,
                        tasfar_core::calibration::ErrorModel::Gaussian,
                    ));
                },
            );
        }
    }

    parallel::reset_threads();

    // --- span guard off-state overhead ------------------------------------
    // The telemetry contract says an untraced `span()` costs one atomic
    // load; hold it to a 50 ns/op budget in release builds. Skipped when
    // `TASFAR_TRACE` is live — an enabled span legitimately pays for I/O.
    if !tasfar_obs::enabled() {
        let iters = if quick { 10_000 } else { 1_000_000 };
        for _ in 0..iters {
            std::hint::black_box(tasfar_obs::span("bench.noop"));
        }
        let ns = time_median(samples, iters, || {
            std::hint::black_box(tasfar_obs::span("bench.noop"));
        });
        println!(
            "{:>12} {:<14} threads=1  {ns:>12.1} ns/iter",
            "span_off", "disabled"
        );
        rows.push(Row {
            kernel: "span_off",
            size: "disabled".to_string(),
            threads: 1,
            ns_per_iter: ns,
        });
        assert!(
            cfg!(debug_assertions) || ns < 50.0,
            "span guard off-state overhead {ns:.1} ns/op exceeds the 50 ns budget"
        );
    }

    // --- report -----------------------------------------------------------
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            let baseline = rows
                .iter()
                .find(|b| b.kernel == r.kernel && b.size == r.size && b.threads == 1)
                .map(|b| b.ns_per_iter)
                .unwrap_or(r.ns_per_iter);
            Json::obj(vec![
                ("kernel", Json::from(r.kernel)),
                ("size", Json::from(r.size.clone())),
                ("threads", Json::from(r.threads)),
                ("ns_per_iter", Json::Num(r.ns_per_iter)),
                ("speedup_vs_1_thread", Json::Num(baseline / r.ns_per_iter)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("host_cpus", Json::from(cpus)),
        ("samples_per_point", Json::from(samples)),
        ("results", Json::Arr(results)),
        ("parallel_pool", tasfar_obs::pool_stats_json()),
    ]);
    std::fs::write("BENCH_kernels.json", format!("{doc}\n")).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json ({} rows)", rows.len());
}
