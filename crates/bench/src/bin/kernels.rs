//! Dependency-free micro-benchmarks of the TASFAR hot-path kernels.
//!
//! Replaces the former Criterion benches (the build environment has no
//! crates.io access). Each kernel is timed with a warmup phase followed by
//! `TASFAR_BENCH_SAMPLES` (default 9) timed samples; the reported figure is
//! the best (minimum) ns/iteration — the least-perturbed estimate on a
//! shared host — alongside the total wall time spent in the timed samples
//! and the warmup iteration count.
//!
//! Two grid dimensions beyond kernel/size:
//!
//! * **backend** — the GEMM-family and convolution kernels run under both
//!   compute backends (`naive` and `blocked`, see `tasfar_nn::backend`), so
//!   the result file records the head-to-head on every shape. The remaining
//!   kernels run under the default backend. Blocked rows carry
//!   `speedup_vs_naive`, and the binary self-asserts that `blocked` beats
//!   `naive` on the largest matmul (1.1× floor — generous, so CI noise
//!   doesn't flake; the recorded figure is the real speedup).
//! * **threads** — every kernel runs with the parallel runtime pinned to 1
//!   thread and, on multi-CPU hosts, again at 4 threads with the row
//!   carrying its speedup over the 1-thread baseline. On a single-CPU host
//!   the >1-thread grid is skipped (it measures scheduling overhead, not
//!   scaling) except for one sentinel row tagged `thread_scaling_na`, kept
//!   so the schema's thread dimension stays stable.
//!
//! The binary also audits the zero-allocation contract: a counting global
//! allocator measures heap allocations across steady-state `train_step` +
//! fused MC-dropout iterations (expected: 0 at one thread) and reports them
//! as the `alloc.hot_path` gauge, next to the scratch-arena counters.
//!
//! Run with: `cargo run --release -p tasfar-bench --bin kernels`
//!
//! Results are written to `BENCH_kernels.json` in the working directory
//! (git-tracked at the repo root) or to `TASFAR_BENCH_OUT` when set,
//! including the host's CPU count — the speedups are only meaningful
//! relative to it. Always run from the repo root: `.cargo/config.toml`
//! (with `target-cpu=native`) is discovered from the working directory, and
//! a build without it benches baseline-ISA kernels.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;
use tasfar_core::density::{DensityMap1d, GridSpec};
use tasfar_core::uncertainty::{McDropout, McPrediction};
use tasfar_nn::backend::{self, BackendKind};
use tasfar_nn::json::Json;
use tasfar_nn::layers::{Conv1d, Dense, Dropout, Layer, Mode, Relu, Sequential, TcnBlock};
use tasfar_nn::parallel;
use tasfar_nn::prelude::{train_step, Adam, Init, Mse, Scratch};
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// Counts heap acquisitions (`alloc` + `realloc`) on this thread, for the
/// hot-path allocation audit. Deallocations are not counted.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// One benchmark result row.
struct Row {
    kernel: &'static str,
    size: String,
    /// Compute backend the kernel ran under (`naive` or `blocked`).
    backend: &'static str,
    threads: usize,
    ns_per_iter: f64,
    /// Median ns/call across the timed samples (nearest rank).
    ns_per_iter_p50: f64,
    /// 90th-percentile ns/call across the timed samples (nearest rank).
    ns_per_iter_p90: f64,
    /// Total wall time across the timed samples, nanoseconds.
    wall_ns_total: f64,
    /// Untimed iterations run before sampling started.
    warmup_iters: usize,
}

/// Per-iteration timing distribution over the samples of one bench point.
struct Timing {
    /// Minimum ns/call — the headline figure (see below).
    best: f64,
    /// Median ns/call: how the kernel typically behaves, noise included.
    p50: f64,
    /// 90th-percentile ns/call: the noisy tail, for jitter tracking.
    p90: f64,
    /// Total wall time across the timed samples, nanoseconds.
    total: f64,
}

/// Times `f` (already warmed up) over `samples` samples of `iters` calls
/// each and returns the per-iteration distribution.
///
/// The headline is the minimum, not the median: on a shared host the samples
/// are the true cost plus non-negative scheduler/frequency noise, so the
/// smallest sample is the least-perturbed estimate and the only one that
/// compares two kernels fairly when load fluctuates between their runs. The
/// p50/p90 figures ride along so the watchdog can distinguish a genuinely
/// slower kernel from a noisier host.
fn time_best(samples: usize, iters: usize, mut f: impl FnMut()) -> Timing {
    let mut total = 0.0f64;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let ns = t0.elapsed().as_nanos() as f64;
            total += ns;
            ns / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    // Nearest-rank percentile over the sorted samples.
    let rank = |q: f64| per_iter[((q * samples as f64).ceil() as usize).clamp(1, samples) - 1];
    Timing {
        best: per_iter[0],
        p50: rank(0.50),
        p90: rank(0.90),
        total,
    }
}

#[allow(clippy::too_many_arguments)]
fn bench(
    rows: &mut Vec<Row>,
    kernel: &'static str,
    size: &str,
    backend_kind: BackendKind,
    threads: usize,
    samples: usize,
    iters: usize,
    mut f: impl FnMut(),
) {
    backend::set_backend(backend_kind);
    parallel::set_threads(threads);
    // Warmup: one sample's worth, untimed.
    for _ in 0..iters {
        f();
    }
    let timing = time_best(samples, iters, &mut f);
    println!(
        "{kernel:>16} {size:<14} {:<8} threads={threads}  {:>12.0} ns/iter (p50 {:.0})",
        backend_kind.name(),
        timing.best,
        timing.p50
    );
    rows.push(Row {
        kernel,
        size: size.to_string(),
        backend: backend_kind.name(),
        threads,
        ns_per_iter: timing.best,
        ns_per_iter_p50: timing.p50,
        ns_per_iter_p90: timing.p90,
        wall_ns_total: timing.total,
        warmup_iters: iters,
    });
}

fn mc_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(8, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 1, Init::XavierUniform, rng))
}

fn main() {
    let samples: usize = std::env::var("TASFAR_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let quick = std::env::var("TASFAR_BENCH_QUICK").is_ok();
    // `available_parallelism` respects cgroup/affinity limits and reports 1
    // in constrained containers; `host_cpus` cross-checks /proc/cpuinfo so
    // the recorded figure matches the hardware the speedups ran on.
    let cpus = tasfar_obs::host_cpus();
    println!(
        "host cpus: {cpus}; samples per point: {samples}{}",
        if quick { " (quick)" } else { "" }
    );

    let mut rng = Rng::new(0x8E2C);
    let mut rows: Vec<Row> = Vec::new();
    // On a single-CPU host only 1-thread rows carry signal; a lone sentinel
    // >1-thread row (added below) keeps the schema's thread dimension alive.
    let thread_counts: Vec<usize> = if cpus == 1 { vec![1] } else { vec![1, 4] };
    let backends = [BackendKind::Naive, BackendKind::Blocked];
    let default_backend = backend::DEFAULT_BACKEND;

    // --- matmul m×k×n ----------------------------------------------------
    // The `*_into` form with a reused output isolates the kernel itself:
    // a fresh allocation per call would add identical page-fault overhead to
    // both backends and wash out the head-to-head.
    for &n in &[32usize, 128, 256] {
        let a = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let mut out = Tensor::zeros(n, n);
        let iters = if quick {
            1
        } else {
            ((256 / n).max(1) * (256 / n).max(1)).max(4)
        };
        for &bk in &backends {
            for &t in &thread_counts {
                bench(
                    &mut rows,
                    "matmul",
                    &format!("{n}x{n}x{n}"),
                    bk,
                    t,
                    samples,
                    iters,
                    || {
                        a.matmul_into(&b, &mut out);
                        std::hint::black_box(&out);
                    },
                );
            }
        }
        if n == 256 && cpus == 1 {
            // The sentinel: one >1-thread row so single-CPU result files keep
            // the `thread_scaling_na` tag and thread dimension in the schema.
            bench(
                &mut rows,
                "matmul",
                "256x256x256",
                default_backend,
                4,
                samples,
                iters,
                || {
                    a.matmul_into(&b, &mut out);
                    std::hint::black_box(&out);
                },
            );
        }
    }

    // --- transposed matmul variants --------------------------------------
    // The training loop's gradient products: `t_matmul` is xᵀ·dy (dW) and
    // `matmul_t` is dy·Wᵀ (dx). Benched at the largest size only — the
    // small shapes are covered by train_step below.
    {
        let n = 256;
        let a = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let mut out = Tensor::zeros(n, n);
        let iters = if quick { 1 } else { 4 };
        for &bk in &backends {
            for &t in &thread_counts {
                bench(
                    &mut rows,
                    "t_matmul",
                    "256x256x256",
                    bk,
                    t,
                    samples,
                    iters,
                    || {
                        a.t_matmul_into(&b, &mut out);
                        std::hint::black_box(&out);
                    },
                );
            }
        }
        for &bk in &backends {
            for &t in &thread_counts {
                bench(
                    &mut rows,
                    "matmul_t",
                    "256x256x256",
                    bk,
                    t,
                    samples,
                    iters,
                    || {
                        a.matmul_t_into(&b, &mut out);
                        std::hint::black_box(&out);
                    },
                );
            }
        }
    }

    // --- conv1d forward / backward --------------------------------------
    {
        let (in_ch, out_ch, k, t_len, batch) = (6, 16, 3, 20, 64);
        let mut conv = Conv1d::new(in_ch, out_ch, k, 1, t_len, &mut rng);
        let x = Tensor::rand_normal(batch, in_ch * t_len, 0.0, 1.0, &mut rng);
        let g = Tensor::rand_normal(batch, out_ch * t_len, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 8 };
        for &bk in &backends {
            for &t in &thread_counts {
                bench(
                    &mut rows,
                    "conv1d_fwd",
                    "6->16 k3 t20 b64",
                    bk,
                    t,
                    samples,
                    iters,
                    || {
                        std::hint::black_box(conv.forward(&x, Mode::Train));
                    },
                );
            }
        }
        for &bk in &backends {
            for &t in &thread_counts {
                let _ = conv.forward(&x, Mode::Train);
                bench(
                    &mut rows,
                    "conv1d_bwd",
                    "6->16 k3 t20 b64",
                    bk,
                    t,
                    samples,
                    iters,
                    || {
                        std::hint::black_box(conv.backward(&g));
                    },
                );
            }
        }
    }

    // --- TCN block forward ----------------------------------------------
    {
        let mut block = TcnBlock::new(6, 16, 3, 2, 20, 0.1, &mut rng);
        let x = Tensor::rand_normal(64, 6 * 20, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 4 };
        for &bk in &backends {
            for &t in &thread_counts {
                bench(
                    &mut rows,
                    "tcn_fwd",
                    "6->16 k3 d2 t20",
                    bk,
                    t,
                    samples,
                    iters,
                    || {
                        std::hint::black_box(block.forward(&x, Mode::Eval));
                    },
                );
            }
        }
    }

    // --- MC-dropout (T = 20), per-pass vs fused ---------------------------
    // `mc_dropout` is the reference per-pass estimator; `mc_dropout_fused`
    // runs the same 20 passes as one stacked batched forward into a reused
    // out-parameter (the production path behind `McDropout::predict`). The
    // two are bit-identical (pinned by `tasfar-core/tests/fused_mc.rs`), so
    // the gap between the rows is pure overhead removed.
    {
        let x = Tensor::rand_normal(128, 8, 0.0, 1.0, &mut rng);
        let iters = if quick { 1 } else { 2 };
        for &t in &thread_counts {
            let mut model = mc_model(&mut Rng::new(7));
            bench(
                &mut rows,
                "mc_dropout",
                "T=20 b128 mlp64",
                default_backend,
                t,
                samples,
                iters,
                || {
                    std::hint::black_box(McDropout::new(20).predict_unfused(&mut model, &x));
                },
            );
        }
        for &t in &thread_counts {
            let mut model = mc_model(&mut Rng::new(7));
            let est = McDropout::new(20);
            let mut out = McPrediction::empty();
            bench(
                &mut rows,
                "mc_dropout_fused",
                "T=20 b128 mlp64",
                default_backend,
                t,
                samples,
                iters,
                || {
                    est.predict_into(&mut model, &x, &mut out);
                    std::hint::black_box(&mut out);
                },
            );
        }
    }

    // --- one full training step ------------------------------------------
    {
        let iters = if quick { 1 } else { 4 };
        for &t in &thread_counts {
            let mut step_rng = Rng::new(11);
            let mut model = mc_model(&mut step_rng);
            let mut opt = Adam::new(1e-4);
            let x = Tensor::rand_normal(128, 8, 0.0, 1.0, &mut step_rng);
            let y = Tensor::rand_normal(128, 1, 0.0, 1.0, &mut step_rng);
            let mut scratch = Scratch::new();
            bench(
                &mut rows,
                "train_step",
                "b128 mlp64",
                default_backend,
                t,
                samples,
                iters,
                || {
                    let loss = train_step(
                        &mut model,
                        &mut opt,
                        &Mse,
                        &x,
                        &y,
                        None,
                        Mode::Train,
                        0,
                        &mut scratch,
                    )
                    .expect("bench train_step");
                    std::hint::black_box(loss);
                },
            );
        }
    }

    // --- KDE density estimation ------------------------------------------
    {
        let preds: Vec<f64> = (0..512).map(|_| rng.gaussian(0.0, 2.0)).collect();
        let sigmas: Vec<f64> = (0..512).map(|_| rng.uniform(0.05, 0.4)).collect();
        let iters = if quick { 1 } else { 4 };
        for &t in &thread_counts {
            bench(
                &mut rows,
                "density_1d",
                "n512 cell0.05",
                default_backend,
                t,
                samples,
                iters,
                || {
                    let spec = GridSpec::from_range(-10.0, 10.0, 0.05);
                    std::hint::black_box(DensityMap1d::estimate(
                        &preds,
                        &sigmas,
                        spec,
                        tasfar_core::calibration::ErrorModel::Gaussian,
                    ));
                },
            );
        }
    }

    // --- hot-path allocation audit ----------------------------------------
    // With the arena warm and one thread pinned, steady-state train_step and
    // fused MC-dropout iterations must not touch the heap. The same contract
    // is enforced test-side by the `alloc_audit` suites; here it is recorded
    // into the result file as provenance for the numbers above.
    let hot_path_allocs = {
        backend::set_backend(default_backend);
        parallel::set_threads(1);
        let mut audit_rng = Rng::new(13);
        let mut model = mc_model(&mut audit_rng);
        let mut opt = Adam::new(1e-4);
        let x = Tensor::rand_normal(64, 8, 0.0, 1.0, &mut audit_rng);
        let y = Tensor::rand_normal(64, 1, 0.0, 1.0, &mut audit_rng);
        let mut scratch = Scratch::new();
        let est = McDropout::new(20);
        let mut out = McPrediction::empty();
        for _ in 0..3 {
            train_step(
                &mut model,
                &mut opt,
                &Mse,
                &x,
                &y,
                None,
                Mode::Train,
                0,
                &mut scratch,
            )
            .expect("audit train_step");
            est.predict_into(&mut model, &x, &mut out);
        }
        let before = alloc_count();
        for _ in 0..5 {
            train_step(
                &mut model,
                &mut opt,
                &Mse,
                &x,
                &y,
                None,
                Mode::Train,
                0,
                &mut scratch,
            )
            .expect("audit train_step");
            est.predict_into(&mut model, &x, &mut out);
        }
        let allocs = alloc_count() - before;
        println!("hot-path allocations over 5 steady-state iterations: {allocs}");
        tasfar_obs::metrics::gauge("alloc.hot_path").set(allocs as i64);
        allocs
    };

    parallel::reset_threads();

    // --- span guard off-state overhead ------------------------------------
    // The telemetry contract says an untraced `span()` costs one atomic
    // load; hold it to a 50 ns/op budget in release builds. Skipped when
    // `TASFAR_TRACE` is live — an enabled span legitimately pays for I/O.
    if !tasfar_obs::enabled() {
        let iters = if quick { 10_000 } else { 1_000_000 };
        for _ in 0..iters {
            std::hint::black_box(tasfar_obs::span("bench.noop"));
        }
        let timing = time_best(samples, iters, || {
            std::hint::black_box(tasfar_obs::span("bench.noop"));
        });
        let ns = timing.best;
        println!(
            "{:>16} {:<14} threads=1  {ns:>12.1} ns/iter",
            "span_off", "disabled"
        );
        rows.push(Row {
            kernel: "span_off",
            size: "disabled".to_string(),
            backend: default_backend.name(),
            threads: 1,
            ns_per_iter: timing.best,
            ns_per_iter_p50: timing.p50,
            ns_per_iter_p90: timing.p90,
            wall_ns_total: timing.total,
            warmup_iters: iters,
        });
        assert!(
            cfg!(debug_assertions) || ns < 50.0,
            "span guard off-state overhead {ns:.1} ns/op exceeds the 50 ns budget"
        );
    }

    // --- self-checks -------------------------------------------------------
    // The fused MC path exists to be faster than the per-pass one on the
    // same host in the same run; regressing that is a bench failure, not a
    // number to record. (Debug builds are exempt: they measure the
    // allocator, not the kernels.)
    let ns_of = |kernel: &str| {
        rows.iter()
            .find(|r| r.kernel == kernel && r.threads == 1)
            .map(|r| r.ns_per_iter)
            .expect("kernel row missing")
    };
    let (unfused, fused) = (ns_of("mc_dropout"), ns_of("mc_dropout_fused"));
    println!(
        "mc_dropout fused speedup at 1 thread: {:.2}x",
        unfused / fused
    );
    assert!(
        cfg!(debug_assertions) || fused < unfused,
        "fused MC-dropout ({fused:.0} ns) must beat the per-pass path ({unfused:.0} ns)"
    );
    assert!(
        cfg!(debug_assertions) || hot_path_allocs == 0,
        "steady-state hot path performed {hot_path_allocs} heap allocations"
    );
    // The blocked backend exists to be faster than naive where blocking
    // pays; the largest matmul is its home turf. 1.1× is a deliberately
    // generous floor (the recorded speedup should be well above it) so a
    // noisy quick-mode CI run doesn't flake.
    let backend_ns_of = |kernel: &str, size: &str, bk: &str| {
        rows.iter()
            .find(|r| r.kernel == kernel && r.size == size && r.backend == bk && r.threads == 1)
            .map(|r| r.ns_per_iter)
            .expect("backend row missing")
    };
    let naive_mm = backend_ns_of("matmul", "256x256x256", "naive");
    let blocked_mm = backend_ns_of("matmul", "256x256x256", "blocked");
    println!(
        "matmul 256x256x256 blocked speedup vs naive at 1 thread: {:.2}x",
        naive_mm / blocked_mm
    );
    assert!(
        cfg!(debug_assertions) || naive_mm / blocked_mm >= 1.1,
        "blocked matmul 256x256x256 ({blocked_mm:.0} ns) must beat naive ({naive_mm:.0} ns) \
         by at least 1.1x"
    );

    // --- report -----------------------------------------------------------
    tasfar_obs::sync_arena_metrics();
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            let baseline = rows
                .iter()
                .find(|b| {
                    b.kernel == r.kernel
                        && b.size == r.size
                        && b.backend == r.backend
                        && b.threads == 1
                })
                .map(|b| b.ns_per_iter)
                .unwrap_or(r.ns_per_iter);
            // Nanosecond counts are emitted as integers (`3692`, not
            // `3692.109375`): the sub-ns fraction is far below clock
            // resolution, and float-formatted counts made the file look
            // like it carried ratio-valued fields. Ratios (`speedup_*`)
            // stay floats.
            let ns = |v: f64| Json::UInt(v.round() as u64);
            let mut pairs = vec![
                ("kernel", Json::from(r.kernel)),
                ("size", Json::from(r.size.clone())),
                ("backend", Json::from(r.backend)),
                ("threads", Json::from(r.threads)),
                ("ns_per_iter", ns(r.ns_per_iter)),
                ("ns_per_iter_p50", ns(r.ns_per_iter_p50)),
                ("ns_per_iter_p90", ns(r.ns_per_iter_p90)),
                ("wall_ns_total", ns(r.wall_ns_total)),
                ("warmup_iters", Json::from(r.warmup_iters)),
                ("speedup_vs_1_thread", Json::Num(baseline / r.ns_per_iter)),
            ];
            // Blocked rows carry the head-to-head against the naive row of
            // the same kernel/size/threads, when that row exists.
            if r.backend == "blocked" {
                if let Some(naive) = rows.iter().find(|b| {
                    b.kernel == r.kernel
                        && b.size == r.size
                        && b.backend == "naive"
                        && b.threads == r.threads
                }) {
                    pairs.push((
                        "speedup_vs_naive",
                        Json::Num(naive.ns_per_iter / r.ns_per_iter),
                    ));
                }
            }
            // On a single-CPU host a >1-thread run cannot scale; tag the row
            // so consumers don't read scheduling overhead as a regression.
            if cpus == 1 && r.threads > 1 {
                pairs.push(("thread_scaling_na", Json::Bool(true)));
            }
            Json::obj(pairs)
        })
        .collect();
    let doc = Json::obj(vec![
        ("host_cpus", Json::from(cpus)),
        ("samples_per_point", Json::from(samples)),
        ("results", Json::Arr(results)),
        ("alloc_hot_path", Json::from(hot_path_allocs)),
        ("arena", tasfar_obs::arena_stats_json()),
        ("parallel_pool", tasfar_obs::pool_stats_json()),
        ("backend_dispatch", tasfar_obs::backend_stats_json()),
    ]);
    // `TASFAR_BENCH_OUT` redirects the result file (the verify gate writes
    // to a scratch path); the process must still run from the repo root so
    // `.cargo/config.toml` — and with it `target-cpu=native` — applies.
    let out_path =
        std::env::var("TASFAR_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::write(&out_path, format!("{doc}\n"))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path} ({} rows)", rows.len());
}
