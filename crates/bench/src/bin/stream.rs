//! Streaming online-adaptation benchmark on the virtual-sensor workload.
//!
//! Drives `tasfar_core::stream::StreamAdapter` prequentially (predict each
//! chunk, score it against the held-back ground truth, then let the engine
//! ingest it) over `tasfar_data::sensor`'s deployment stream: a steady
//! regime, slow drift, and an abrupt operating-point jump at `shift_at`.
//! Records, per the drift timeline:
//!
//! * per-window MAE before / during / after the abrupt shift,
//! * drift **detection latency in samples** (first detector trip at or
//!   after the jump, minus the jump index),
//! * guarded **re-adaptation wall time** (`adapt_ms`),
//! * steady-state **throughput** (`ns_per_iter` per ingested sample,
//!   re-adaptation walls excluded).
//!
//! Self-checks (full scale): the detector must trip within a bounded
//! number of samples of the jump, and the post-drift steady-state error
//! must land within 10 % of the pre-drift steady state — the "did the
//! engine actually recover" criterion.
//!
//! Run with: `cargo run --release -p tasfar-bench --bin stream`
//!
//! `TASFAR_BENCH_QUICK=1` shrinks the stream to smoke-test scale;
//! `TASFAR_BENCH_OUT` redirects the result file (default
//! `BENCH_stream.json`, git-tracked at the repo root).

use std::time::Instant;

use tasfar_core::metrics;
use tasfar_core::prelude::*;
use tasfar_data::sensor::{self, SensorConfig};
use tasfar_nn::json::Json;
use tasfar_nn::layers::{Dense, Dropout, Relu, Sequential};
use tasfar_nn::loss::Mse;
use tasfar_nn::prelude::{fit, Adam, Init, TrainConfig};
use tasfar_nn::rng::Rng;

const CHUNK: usize = 12;
/// Steady-state evaluation window, samples.
const EVAL_WINDOW_FULL: usize = 360;
/// Fixed reporting window for the per-window error timeline.
const REPORT_WINDOW: usize = 120;

struct Run {
    report: StreamReport,
    /// Per-sample prequential absolute error, indexed by stream position.
    abs_err: Vec<f64>,
    /// Push wall time with re-adaptation walls excluded, nanoseconds.
    steady_ns: f64,
}

fn build_engine(world: &sensor::SensorWorld, seed: u64, quick: bool) -> StreamAdapter<Sequential> {
    let mut rng = Rng::new(seed);
    let mut model = Sequential::new()
        .add(Dense::new(sensor::FEATURES, 32, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(32, 1, Init::XavierUniform, &mut rng));
    let mut opt = Adam::new(5e-3);
    let fit_report = fit(
        &mut model,
        &mut opt,
        &Mse,
        &world.source.x,
        &world.source.y,
        None,
        &TrainConfig {
            epochs: if quick { 60 } else { 120 },
            batch_size: 32,
            seed,
            ..TrainConfig::default()
        },
    );
    println!("source training: final MSE {:.5}", fit_report.final_loss());
    let cfg = TasfarConfig {
        grid_cell: 0.05,
        epochs: if quick { 15 } else { 25 },
        learning_rate: 1e-3,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib =
        calibrate_on_source(&mut model, &world.source, &cfg).expect("the factory sweep calibrates");
    let stream_cfg = StreamConfig {
        window: if quick { 96 } else { 256 },
        warmup: if quick { 64 } else { 192 },
        micro_batch: 24,
        micro_epochs: 6,
        replay_confident: 24,
        live_window: 48,
        check_every: 8,
        grid_headroom: 3.0,
    };
    StreamAdapter::new(
        model,
        calib,
        cfg,
        stream_cfg,
        DriftConfig::default(),
        RecoveryPolicy::default(),
    )
    .expect("valid streaming geometry")
}

/// Prequential drive: score each chunk with the *current* model, then let
/// the engine ingest it.
fn drive(engine: &mut StreamAdapter<Sequential>, world: &sensor::SensorWorld) -> Run {
    let stream = &world.stream;
    let mut abs_err = Vec::with_capacity(stream.len());
    let t0 = Instant::now();
    let mut pos = 0;
    while pos < stream.x.rows() {
        let hi = (pos + CHUNK).min(stream.x.rows());
        let x = stream.x.slice_rows(pos, hi);
        let pred = engine.predict(&x);
        for r in 0..pred.rows() {
            abs_err.push((pred.get(r, 0) - stream.y.get(pos + r, 0)).abs());
        }
        engine.push(&x, &Mse);
        pos = hi;
    }
    let wall_ns = t0.elapsed().as_secs_f64() * 1e9;
    let report = engine.report().clone();
    let readapt_ns: f64 = report.readapt_walls_ms.iter().sum::<f64>() * 1e6;
    Run {
        report,
        abs_err,
        steady_ns: (wall_ns - readapt_ns).max(0.0),
    }
}

fn mae_over(abs_err: &[f64], lo: usize, hi: usize) -> f64 {
    let span = &abs_err[lo.min(abs_err.len())..hi.min(abs_err.len())];
    span.iter().sum::<f64>() / span.len().max(1) as f64
}

fn main() {
    let quick = std::env::var("TASFAR_BENCH_QUICK").is_ok();
    let cfg = if quick {
        SensorConfig {
            n_source: 600,
            n_stream: 720,
            shift_at: 360,
            ..SensorConfig::default()
        }
    } else {
        SensorConfig::default()
    };
    println!(
        "sensor stream at {} scale: {} samples, jump at {}, {} host cpus",
        if quick { "quick" } else { "full" },
        cfg.n_stream,
        cfg.shift_at,
        tasfar_obs::host_cpus()
    );
    let world = sensor::generate(&cfg);
    let mut engine = build_engine(&world, 0x5EED, quick);
    let run = drive(&mut engine, &world);

    // --- drift timeline ----------------------------------------------------
    let eval = if quick {
        EVAL_WINDOW_FULL.min(cfg.shift_at / 2)
    } else {
        EVAL_WINDOW_FULL
    };
    let pre = mae_over(&run.abs_err, cfg.shift_at - eval, cfg.shift_at);
    let during = mae_over(&run.abs_err, cfg.shift_at, cfg.shift_at + eval);
    let post = mae_over(&run.abs_err, cfg.n_stream - eval, cfg.n_stream);
    let detect_latency = run
        .report
        .trip_samples
        .iter()
        .find(|&&s| s >= cfg.shift_at)
        .map(|&s| s - cfg.shift_at);
    let readapt_ms = if run.report.readapt_walls_ms.len() > 1 {
        // Skip the warmup adaptation: re-adaptation wall is the drift story.
        let walls = &run.report.readapt_walls_ms[1..];
        walls.iter().sum::<f64>() / walls.len() as f64
    } else {
        f64::NAN
    };
    let ns_per_sample = run.steady_ns / run.report.ingested.max(1) as f64;

    println!(
        "steady-state MAE: pre {pre:.4} | during {during:.4} | post {post:.4} \
         (post/pre {:.3})",
        post / pre
    );
    println!(
        "drift: {} trip(s), detection latency {} samples, {} readapt(s) \
         ({} degraded), mean readapt {readapt_ms:.0} ms",
        run.report.trips,
        detect_latency.map_or_else(|| "-".into(), |l| l.to_string()),
        run.report.readapts,
        run.report.degraded,
    );
    println!(
        "throughput: {:.0} ns/sample steady-state ({} ingested, {} micro-batches)",
        ns_per_sample, run.report.ingested, run.report.micro_batches
    );

    // --- self-checks --------------------------------------------------------
    let detect_latency = detect_latency.unwrap_or_else(|| {
        panic!(
            "the detector never tripped after the jump at {}",
            cfg.shift_at
        )
    });
    assert!(
        run.report.readapts >= 2,
        "warmup + at least one drift re-adaptation must have run"
    );
    let terminal = ["adapted", "recovered", "degraded-to-last-good"];
    assert!(
        terminal.contains(&engine.phase().label()),
        "the engine must end in a terminal state, got `{}`",
        engine.phase().label()
    );
    if !quick {
        assert!(
            detect_latency <= 240,
            "detection latency {detect_latency} samples is too slow"
        );
        assert!(
            post <= 1.10 * pre,
            "post-drift steady-state MAE {post:.4} must land within 10% of \
             pre-drift {pre:.4}"
        );
    }
    let final_pred = engine.predict(&world.stream.x);
    assert!(
        final_pred.as_slice().iter().all(|v| v.is_finite()),
        "the adapted model must stay finite"
    );
    println!(
        "final model MAE over the whole stream: {:.4}",
        metrics::mae(&final_pred, &world.stream.y)
    );

    // --- report -------------------------------------------------------------
    let results = vec![
        Json::obj(vec![
            ("task", Json::from("sensor_stream")),
            ("variant", Json::from("steady_pre")),
            ("metric", Json::from("mae")),
            ("err", Json::Num(pre)),
        ]),
        Json::obj(vec![
            ("task", Json::from("sensor_stream")),
            ("variant", Json::from("during_drift")),
            ("metric", Json::from("mae")),
            ("err", Json::Num(during)),
        ]),
        Json::obj(vec![
            ("task", Json::from("sensor_stream")),
            ("variant", Json::from("steady_post")),
            ("metric", Json::from("mae")),
            ("err", Json::Num(post)),
        ]),
        Json::obj(vec![
            ("task", Json::from("sensor_stream")),
            ("variant", Json::from("detection")),
            ("detect_latency_samples", Json::from(detect_latency)),
        ]),
        Json::obj(vec![
            ("task", Json::from("sensor_stream")),
            ("variant", Json::from("readapt")),
            ("adapt_ms", Json::Num(readapt_ms)),
        ]),
        Json::obj(vec![
            ("task", Json::from("sensor_stream")),
            ("variant", Json::from("throughput")),
            ("ns_per_iter", Json::Num(ns_per_sample)),
        ]),
    ];
    let windows: Vec<Json> = (0..run.abs_err.len() / REPORT_WINDOW)
        .map(|w| {
            let (lo, hi) = (w * REPORT_WINDOW, (w + 1) * REPORT_WINDOW);
            Json::obj(vec![
                ("start", Json::from(lo)),
                ("end", Json::from(hi)),
                (
                    "phase",
                    Json::from(if hi <= cfg.shift_at {
                        "pre"
                    } else if lo < cfg.shift_at + eval {
                        "drift"
                    } else {
                        "post"
                    }),
                ),
                ("mae", Json::Num(mae_over(&run.abs_err, lo, hi))),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("host_cpus", Json::from(tasfar_obs::host_cpus())),
        ("scale", Json::from(if quick { "quick" } else { "full" })),
        ("stream_samples", Json::from(cfg.n_stream)),
        ("shift_at", Json::from(cfg.shift_at)),
        ("trips", Json::from(run.report.trips)),
        ("readapts", Json::from(run.report.readapts)),
        ("degraded", Json::from(run.report.degraded)),
        ("micro_batches", Json::from(run.report.micro_batches)),
        ("final_phase", Json::from(engine.phase().label())),
        ("results", Json::Arr(results)),
        ("windows", Json::Arr(windows)),
        (
            "stage_latency_ns",
            tasfar_bench::report::stage_latency_json(),
        ),
    ]);
    let out_path = std::env::var("TASFAR_BENCH_OUT").unwrap_or_else(|_| "BENCH_stream.json".into());
    std::fs::write(&out_path, format!("{doc}\n"))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
