//! `repro` — regenerates every table and figure of the TASFAR paper.
//!
//! ```text
//! repro [--quick] <experiment>...
//! repro all                # everything, paper scale
//! repro --quick fig7 fig8  # selected experiments at smoke-test scale
//! repro list               # show available experiments
//! ```
//!
//! Each experiment prints its table(s) and writes a CSV under `results/`.

use std::time::Instant;
use tasfar_bench::experiments::{
    ablations, crowd_exp, multiseed, pdr_adapt, pdr_params, tabular_exp,
};
use tasfar_bench::report::{results_dir, Table};
use tasfar_bench::schemes::Scheme;
use tasfar_bench::tasks::{housing_context, taxi_context, CrowdContext, PdrContext, Scale};
use tasfar_data::crowd::CrowdConfig;
use tasfar_data::housing::HousingConfig;
use tasfar_data::pdr::PdrConfig;
use tasfar_data::taxi::TaxiConfig;
use tasfar_nn::json::Json;

const EXPERIMENTS: &[&str] = &[
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "table1",
    "ablation_joint",
    "ablation_replay",
    "ablation_earlystop",
    "ablation_taurescale",
    "table1_seeds",
    "fig21_seeds",
    "ablation_uncertainty",
];

/// Lazily built contexts shared across the selected experiments.
struct Contexts {
    scale: Scale,
    pdr: Option<PdrContext>,
    crowd: Option<CrowdContext>,
    pdr_cmp_seen: Option<Vec<pdr_adapt::UserComparison>>,
    pdr_cmp_unseen: Option<Vec<pdr_adapt::UserComparison>>,
    crowd_cmp: Option<crowd_exp::CrowdComparison>,
}

impl Contexts {
    fn new(scale: Scale) -> Self {
        Contexts {
            scale,
            pdr: None,
            crowd: None,
            pdr_cmp_seen: None,
            pdr_cmp_unseen: None,
            crowd_cmp: None,
        }
    }

    fn pdr(&mut self) -> &PdrContext {
        if self.pdr.is_none() {
            eprintln!("[setup] building PDR context (world + source TCN training)...");
            let t = Instant::now();
            self.pdr = Some(PdrContext::build(self.scale));
            eprintln!(
                "[setup] PDR context ready in {:.1}s",
                t.elapsed().as_secs_f64()
            );
        }
        self.pdr.as_ref().unwrap()
    }

    fn crowd(&mut self) -> &CrowdContext {
        if self.crowd.is_none() {
            eprintln!("[setup] building crowd context (world + source MLP training)...");
            let t = Instant::now();
            self.crowd = Some(CrowdContext::build(self.scale));
            eprintln!(
                "[setup] crowd context ready in {:.1}s",
                t.elapsed().as_secs_f64()
            );
        }
        self.crowd.as_ref().unwrap()
    }

    fn pdr_cmp_seen(&mut self) -> &[pdr_adapt::UserComparison] {
        if self.pdr_cmp_seen.is_none() {
            self.pdr();
            let ctx = self.pdr.as_ref().unwrap();
            eprintln!("[setup] running six-scheme comparison on the seen group...");
            let t = Instant::now();
            let users = ctx.world.seen_users.clone();
            self.pdr_cmp_seen = Some(pdr_adapt::compare_group(ctx, &users, &Scheme::all()));
            eprintln!(
                "[setup] seen-group comparison done in {:.1}s",
                t.elapsed().as_secs_f64()
            );
        }
        self.pdr_cmp_seen.as_ref().unwrap()
    }

    fn pdr_cmp_unseen(&mut self) -> &[pdr_adapt::UserComparison] {
        if self.pdr_cmp_unseen.is_none() {
            self.pdr();
            let ctx = self.pdr.as_ref().unwrap();
            eprintln!("[setup] running six-scheme comparison on the unseen group...");
            let t = Instant::now();
            let users = ctx.world.unseen_users.clone();
            self.pdr_cmp_unseen = Some(pdr_adapt::compare_group(ctx, &users, &Scheme::all()));
            eprintln!(
                "[setup] unseen-group comparison done in {:.1}s",
                t.elapsed().as_secs_f64()
            );
        }
        self.pdr_cmp_unseen.as_ref().unwrap()
    }

    fn crowd_cmp(&mut self) -> &crowd_exp::CrowdComparison {
        if self.crowd_cmp.is_none() {
            self.crowd();
            let ctx = self.crowd.as_ref().unwrap();
            eprintln!("[setup] running six-scheme comparison on the crowd scenes...");
            let t = Instant::now();
            self.crowd_cmp = Some(crowd_exp::compare(ctx));
            eprintln!(
                "[setup] crowd comparison done in {:.1}s",
                t.elapsed().as_secs_f64()
            );
        }
        self.crowd_cmp.as_ref().unwrap()
    }
}

fn emit(table: Table) {
    table.print();
    let path = table.save_csv();
    eprintln!("[saved] {}", path.display());
}

fn run(name: &str, ctxs: &mut Contexts) {
    let t = Instant::now();
    eprintln!("[run] {name}");
    match name {
        "fig2" => emit(pdr_params::fig2(ctxs.pdr())),
        "fig3" => emit(pdr_params::fig3(ctxs.pdr())),
        "fig6" => emit(pdr_params::fig6(ctxs.pdr())),
        "fig7" => emit(pdr_params::fig7(ctxs.pdr())),
        "fig8" => emit(pdr_params::fig8(ctxs.pdr())),
        "fig9" => emit(pdr_params::fig9(ctxs.pdr())),
        "fig10" => emit(pdr_params::fig10(ctxs.pdr())),
        "fig11" => emit(pdr_params::fig11(ctxs.pdr())),
        "fig12" => emit(pdr_adapt::fig12(ctxs.pdr())),
        "fig13" => emit(pdr_adapt::fig13(ctxs.pdr())),
        "fig14" => {
            let cmp = ctxs.pdr_cmp_seen().to_vec();
            emit(pdr_adapt::fig14(&cmp));
        }
        "fig15" => {
            let cmp = ctxs.pdr_cmp_seen().to_vec();
            emit(pdr_adapt::fig15(&cmp));
        }
        "fig16" => emit(pdr_adapt::fig16(ctxs.pdr())),
        "fig17" => {
            let cmp = ctxs.pdr_cmp_seen().to_vec();
            emit(pdr_adapt::fig17_18(&cmp, "seen", 2.0));
        }
        "fig18" => {
            let cmp = ctxs.pdr_cmp_unseen().to_vec();
            emit(pdr_adapt::fig17_18(&cmp, "unseen", 5.0));
        }
        "fig19" => {
            ctxs.crowd_cmp();
            emit(crowd_exp::fig19(ctxs.crowd_cmp.as_ref().unwrap()));
        }
        "fig20" => {
            ctxs.crowd_cmp();
            let table = {
                let cmp = ctxs.crowd_cmp.as_ref().unwrap();
                let ctx = ctxs.crowd.as_ref().unwrap();
                crowd_exp::fig20(ctx, cmp)
            };
            emit(table);
        }
        "fig21" => {
            eprintln!("[setup] building housing context...");
            let housing = housing_context(ctxs.scale);
            emit(tabular_exp::fig21_task(
                &housing,
                tabular_exp::TabularMetric::Mse,
            ));
            eprintln!("[setup] building taxi context...");
            let taxi = taxi_context(ctxs.scale);
            emit(tabular_exp::fig21_task(
                &taxi,
                tabular_exp::TabularMetric::Rmsle,
            ));
        }
        "fig22" => emit(pdr_adapt::fig22(ctxs.pdr())),
        "table1" => {
            ctxs.crowd_cmp();
            let cmp = ctxs.crowd_cmp.as_ref().unwrap();
            emit(crowd_exp::table1(cmp));
            emit(crowd_exp::table1_reductions(cmp));
        }
        "ablation_joint" => emit(ablations::ablation_joint(ctxs.pdr())),
        "ablation_replay" => emit(ablations::ablation_replay(ctxs.pdr())),
        "ablation_earlystop" => emit(ablations::ablation_early_stop(ctxs.pdr())),
        "ablation_taurescale" => emit(ablations::ablation_tau_rescale(ctxs.pdr())),
        "ablation_uncertainty" => emit(ablations::ablation_uncertainty(ctxs.pdr())),
        "table1_seeds" => emit(multiseed::table1_seeds(ctxs.scale, 5)),
        "fig21_seeds" => emit(multiseed::fig21_seeds(ctxs.scale, 5)),
        other => {
            eprintln!("unknown experiment '{other}'; try `repro list`");
            std::process::exit(2);
        }
    }
    eprintln!("[done] {name} in {:.1}s\n", t.elapsed().as_secs_f64());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    args.retain(|a| {
        if a == "--quick" {
            scale = Scale::Quick;
            false
        } else {
            true
        }
    });
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro [--quick] <experiment>... | all | list");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        return;
    }
    if args[0] == "list" {
        for e in EXPERIMENTS {
            println!("{e}");
        }
        return;
    }
    let selected: Vec<String> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    // Run manifest up front — seeds, thread count, and build profile — so a
    // saved log unambiguously identifies what produced the CSVs. The same
    // record goes to the trace when `TASFAR_TRACE` is set.
    let manifest = tasfar_obs::emit_manifest(
        "repro",
        vec![
            (
                "experiments",
                Json::Arr(selected.iter().map(|s| Json::from(s.as_str())).collect()),
            ),
            (
                "scale",
                Json::from(if matches!(scale, Scale::Quick) {
                    "quick"
                } else {
                    "full"
                }),
            ),
            ("pdr_seed", Json::from(PdrConfig::default().seed)),
            ("crowd_seed", Json::from(CrowdConfig::default().seed)),
            ("housing_seed", Json::from(HousingConfig::default().seed)),
            ("taxi_seed", Json::from(TaxiConfig::default().seed)),
        ],
    );
    eprintln!("[manifest] {manifest}");
    let mut ctxs = Contexts::new(scale);
    let t = Instant::now();
    for name in &selected {
        run(name, &mut ctxs);
    }
    // Final counter/gauge/histogram snapshot next to the CSVs: how much work
    // (epochs, MC-dropout passes, KDE samples, pool chunks) the run did —
    // plus one outcome record per adaptation run (`adapted` /
    // `recovered:<n>` / `fell_back`), so regressions in recovery behaviour
    // show up in the saved perf trajectory.
    tasfar_obs::sync_pool_metrics();
    let mut metrics = tasfar_obs::metrics::snapshot();
    let runs = Json::Arr(
        tasfar_bench::schemes::outcome_log::drain()
            .into_iter()
            .map(|(scheme, outcome, resident_bytes)| {
                Json::obj(vec![
                    ("scheme", Json::Str(scheme)),
                    ("outcome", Json::Str(outcome)),
                    ("resident_bytes", Json::from(resident_bytes)),
                ])
            })
            .collect(),
    );
    if let Json::Obj(pairs) = &mut metrics {
        pairs.push(("runs".to_string(), runs));
        // Per-stage p50/p99 latencies (ns) for the bench-diff watchdog: the
        // tail of each pipeline stage across every adaptation this run did.
        pairs.push((
            "stage_latency_ns".to_string(),
            tasfar_bench::report::stage_latency_json(),
        ));
    }
    let path = results_dir().join("repro_metrics.json");
    if let Err(e) = std::fs::write(&path, format!("{metrics}\n")) {
        eprintln!("[warn] could not write {}: {e}", path.display());
    } else {
        eprintln!("[saved] {}", path.display());
    }
    eprintln!("[total] {:.1}s", t.elapsed().as_secs_f64());
}
