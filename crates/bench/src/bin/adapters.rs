//! Accuracy-vs-bytes sweep for the adapter subspace layer.
//!
//! For each of the paper's four tasks (PDR, crowd counting, housing, taxi),
//! one representative target scenario is adapted five ways: full fine-tuning
//! (every weight moves, per-user resident state = the whole model) and
//! low-rank adapters at rank ∈ {2, 4, 8, 16} (frozen source weights, only
//! the `down`/`up` factors move, per-user state = the delta payload; see
//! `tasfar_nn::adapter`). Each run records its per-user resident bytes, its
//! adapt wall time, and its target error next to the unadapted baseline, so
//! the result file answers "how much accuracy does rank r buy per byte".
//!
//! The task models are deliberately paper-scale (tens of KB), where the
//! per-layer rank clamp `r ≤ min(rows, cols)` leaves the factors a sizable
//! fraction of the base weights. The `memory_scaling` section therefore
//! sweeps the same MLP shape across widths at rank 8 — at deployment widths
//! the delta drops below 5 % of the full model, which the binary
//! self-asserts (the KB-per-user regime the refactor exists for).
//!
//! Run with: `cargo run --release -p tasfar-bench --bin adapters`
//!
//! `TASFAR_BENCH_QUICK=1` switches the worlds to smoke-test scale;
//! `TASFAR_BENCH_OUT` redirects the result file (default
//! `BENCH_adapters.json` in the working directory, git-tracked at the repo
//! root). Run from the repo root so `.cargo/config.toml` applies.

use std::time::Instant;
use tasfar_bench::schemes::resident_bytes;
use tasfar_bench::tasks::{housing_context, taxi_context, CrowdContext, PdrContext, Scale};
use tasfar_core::adapt::{adapt, SourceCalibration, TasfarConfig};
use tasfar_core::metrics;
use tasfar_data::Dataset;
use tasfar_nn::adapter::{delta_footprint, enable_adapters, AdapterConfig};
use tasfar_nn::init::Init;
use tasfar_nn::json::Json;
use tasfar_nn::layers::{Dense, Dropout, Relu, Sequential};
use tasfar_nn::loss::Mse;
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

/// One task's frozen inputs to the sweep.
struct TaskCase {
    name: &'static str,
    model: Sequential,
    calib: SourceCalibration,
    cfg: TasfarConfig,
    adapt_x: Tensor,
    test: Dataset,
    metric: &'static str,
}

fn metric_of(name: &str, pred: &Tensor, y: &Tensor) -> f64 {
    match name {
        "mae" => metrics::mae(pred, y),
        "mse" => metrics::mse(pred, y),
        "rmsle" => metrics::rmsle(pred, y),
        other => panic!("unknown metric {other}"),
    }
}

/// One sweep row: a (task, variant) adaptation run.
struct Row {
    task: &'static str,
    variant: String,
    rank: Option<usize>,
    resident_bytes: u64,
    adapt_ms: f64,
    metric: &'static str,
    err_baseline: f64,
    err: f64,
    /// Relative error vs the full fine-tuning run of the same task
    /// (`(err − err_full) / err_full`; 0 for the full row itself).
    rel_vs_full: f64,
}

fn run_case(case: &mut TaskCase, rows: &mut Vec<Row>) {
    let err_baseline = metric_of(case.metric, &case.model.predict(&case.test.x), &case.test.y);
    println!(
        "[{}] baseline {} = {err_baseline:.5} ({} adapt rows, {} test rows)",
        case.name,
        case.metric,
        case.adapt_x.rows(),
        case.test.len()
    );
    let mut err_full = f64::NAN;
    for (i, rank) in [None, Some(2usize), Some(4), Some(8), Some(16)]
        .into_iter()
        .enumerate()
    {
        let mut model = case.model.clone();
        let mut rng = Rng::new(0xAD00 + i as u64);
        let variant = match rank {
            None => "full".to_string(),
            Some(r) => {
                let attached = enable_adapters(&mut model, &AdapterConfig::rank(r), &mut rng);
                assert!(attached > 0, "every task model has adapter-capable layers");
                tasfar_obs::emit_adapter_event();
                format!("rank:{r}")
            }
        };
        let t0 = Instant::now();
        adapt(&mut model, &case.calib, &case.adapt_x, &Mse, &case.cfg)
            .unwrap_or_else(|e| panic!("{} {variant}: adaptation failed: {e}", case.name));
        let adapt_ms = t0.elapsed().as_secs_f64() * 1e3;
        let bytes = resident_bytes(&mut model);
        let err = metric_of(case.metric, &model.predict(&case.test.x), &case.test.y);
        if rank.is_none() {
            err_full = err;
        }
        let rel_vs_full = (err - err_full) / err_full;
        println!(
            "[{}] {variant:<8} {} = {err:.5} (vs full {rel_vs_full:+.1}%), \
             {bytes} B resident, {adapt_ms:.0} ms",
            case.name,
            case.metric,
            rel_vs_full = 100.0 * rel_vs_full
        );
        rows.push(Row {
            task: case.name,
            variant,
            rank,
            resident_bytes: bytes,
            adapt_ms,
            metric: case.metric,
            err_baseline,
            err,
            rel_vs_full,
        });
    }
}

/// Delta-vs-full footprint of the tabular MLP shape at a given width, rank 8.
fn scaling_point(width: usize) -> (u64, u64, f64) {
    let mut rng = Rng::new(0x5CA1E);
    let mut model = Sequential::new()
        .add(Dense::new(8, width, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(width, width, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dense::new(width, 1, Init::XavierUniform, &mut rng));
    let full_bytes = (model.num_parameters() * std::mem::size_of::<f64>()) as u64;
    enable_adapters(&mut model, &AdapterConfig::rank(8), &mut rng);
    let (_, delta_bytes) = delta_footprint(&mut model);
    (
        full_bytes,
        delta_bytes,
        delta_bytes as f64 / full_bytes as f64,
    )
}

fn main() {
    let quick = std::env::var("TASFAR_BENCH_QUICK").is_ok();
    let scale = if quick { Scale::Quick } else { Scale::Full };
    println!(
        "adapter sweep at {} scale on {} host cpus",
        if quick { "quick" } else { "full" },
        tasfar_obs::host_cpus()
    );

    let mut rows: Vec<Row> = Vec::new();

    // --- PDR: first seen user's trajectories ------------------------------
    {
        let ctx = PdrContext::build(scale);
        let user = &ctx.world.seen_users[0];
        let (adapt_ds, test, _) = ctx.user_splits(user);
        run_case(
            &mut TaskCase {
                name: "pdr",
                model: ctx.model.clone(),
                calib: ctx.calib.clone(),
                cfg: ctx.tasfar.clone(),
                adapt_x: adapt_ds.x,
                test,
                metric: "mae",
            },
            &mut rows,
        );
    }

    // --- Crowd counting: scene 0 ------------------------------------------
    {
        let ctx = CrowdContext::build(scale);
        let (adapt_ds, test) = ctx.scene_splits(0, 17);
        run_case(
            &mut TaskCase {
                name: "crowd",
                model: ctx.model.clone(),
                calib: ctx.calib.clone(),
                cfg: ctx.tasfar.clone(),
                adapt_x: adapt_ds.x,
                test,
                metric: "mae",
            },
            &mut rows,
        );
    }

    // --- Housing / taxi: 80/20 split of the target domain ------------------
    for (name, metric, ctx) in [
        ("housing", "mse", housing_context(scale)),
        ("taxi", "rmsle", taxi_context(scale)),
    ] {
        let (adapt_ds, test) = ctx.target.split_fraction(0.8, &mut Rng::new(5));
        run_case(
            &mut TaskCase {
                name,
                model: ctx.model.clone(),
                calib: ctx.calib.clone(),
                cfg: ctx.tasfar.clone(),
                adapt_x: adapt_ds.x,
                test,
                metric,
            },
            &mut rows,
        );
    }

    // --- memory scaling: same MLP shape, growing width, rank 8 -------------
    let widths = [64usize, 256, 1024];
    let scaling: Vec<(usize, u64, u64, f64)> = widths
        .iter()
        .map(|&w| {
            let (full, delta, ratio) = scaling_point(w);
            println!(
                "[scaling] width {w:>5}: full {full} B, rank-8 delta {delta} B \
                 ({:.1}% of full)",
                100.0 * ratio
            );
            (w, full, delta, ratio)
        })
        .collect();

    // --- self-checks --------------------------------------------------------
    // Structural: every rank ≤ 8 adapter run must keep strictly less
    // resident state than its task's full fine-tune (rank 16 can exceed the
    // base weights of the smallest layers — the sweep records that
    // crossover instead of hiding it), and at deployment width the rank-8
    // delta must be ≤ 5 % of the full model.
    for task in ["pdr", "crowd", "housing", "taxi"] {
        let full = rows
            .iter()
            .find(|r| r.task == task && r.rank.is_none())
            .expect("full row")
            .resident_bytes;
        for r in rows
            .iter()
            .filter(|r| r.task == task && r.rank.is_some_and(|k| k <= 8))
        {
            assert!(
                r.resident_bytes < full,
                "{task} {}: delta {} B must undercut the full clone {} B",
                r.variant,
                r.resident_bytes,
                full
            );
        }
    }
    let (_, _, _, deploy_ratio) = scaling[scaling.len() - 1];
    assert!(
        deploy_ratio <= 0.05,
        "rank-8 delta at deployment width must be ≤ 5% of the full model \
         (got {:.1}%)",
        100.0 * deploy_ratio
    );
    // Accuracy: per task, the best adapter rank should land within 15 %
    // relative error of full fine-tuning on at least 3 of the 4 tasks.
    let mut within = 0usize;
    for task in ["pdr", "crowd", "housing", "taxi"] {
        let best = rows
            .iter()
            .filter(|r| r.task == task && r.rank.is_some())
            .map(|r| r.rel_vs_full)
            .fold(f64::INFINITY, f64::min);
        let r8 = rows
            .iter()
            .find(|r| r.task == task && r.rank == Some(8))
            .expect("rank-8 row")
            .rel_vs_full;
        println!(
            "[{task}] best adapter rank vs full: {:+.1}% (rank 8: {:+.1}%)",
            100.0 * best,
            100.0 * r8
        );
        if best <= 0.15 {
            within += 1;
        }
    }
    println!("adapter accuracy within 15% of full fine-tuning on {within}/4 tasks");
    if !quick {
        assert!(
            within >= 3,
            "adapters must track full fine-tuning within 15% on ≥ 3 of 4 tasks \
             (got {within})"
        );
    }

    // --- report -------------------------------------------------------------
    tasfar_obs::sync_adapter_metrics();
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("task", Json::from(r.task)),
                ("variant", Json::from(r.variant.clone())),
                (
                    "rank",
                    match r.rank {
                        Some(k) => Json::from(k),
                        None => Json::Null,
                    },
                ),
                ("resident_bytes", Json::UInt(r.resident_bytes)),
                ("adapt_ms", Json::Num(r.adapt_ms)),
                ("metric", Json::from(r.metric)),
                ("err_baseline", Json::Num(r.err_baseline)),
                ("err", Json::Num(r.err)),
                ("rel_vs_full", Json::Num(r.rel_vs_full)),
            ])
        })
        .collect();
    let scaling_json: Vec<Json> = scaling
        .iter()
        .map(|&(w, full, delta, ratio)| {
            Json::obj(vec![
                ("width", Json::from(w)),
                ("full_bytes", Json::UInt(full)),
                ("rank8_delta_bytes", Json::UInt(delta)),
                ("delta_ratio", Json::Num(ratio)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("host_cpus", Json::from(tasfar_obs::host_cpus())),
        ("scale", Json::from(if quick { "quick" } else { "full" })),
        ("results", Json::Arr(results)),
        ("memory_scaling", Json::Arr(scaling_json)),
        ("rank8_within_15pct_tasks", Json::from(within)),
        ("adapter", tasfar_obs::adapter_stats_json()),
        // Per-stage p50/p99 latencies across every adaptation in the sweep,
        // so the bench-diff watchdog sees pipeline tails, not just totals.
        (
            "stage_latency_ns",
            tasfar_bench::report::stage_latency_json(),
        ),
    ]);
    let out_path =
        std::env::var("TASFAR_BENCH_OUT").unwrap_or_else(|_| "BENCH_adapters.json".into());
    std::fs::write(&out_path, format!("{doc}\n"))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path} ({} rows)", rows.len());
}
