//! Multi-tenant serving-throughput benchmark: cross-tenant fused batching
//! vs one-request-at-a-time serving over one shared frozen source model.
//!
//! For each tenant count (10 / 1 000 / 100 000) the driver replays the same
//! deterministic Zipf-popularity, Pareto-gap traffic (see
//! `tasfar_serve::traffic`) through the serving runtime twice:
//!
//! * **batched** — the production configuration: concurrent predicts fuse
//!   across tenants within the batch window into **one** segmented
//!   whole-batch forward — the base GEMMs (and the backend's panel-packing
//!   cost) amortize over every request in the window, with per-tenant
//!   rank-`r` corrections applied per row segment.
//! * **unbatched** — the same engine with `batch_window: 1`, so every
//!   request pays the full per-call forward cost alone. Same code path, so
//!   the gap measures batching, not implementation drift.
//!
//! The driver is closed-loop: it fills the bounded admission queue until
//! typed backpressure, drains one work item, repeats — nothing is shed, so
//! both variants serve the identical request set. Per-row figures: predict
//! throughput (ops/s), queue-inclusive latency percentiles (integer
//! nanoseconds, see the DESIGN.md bench schema), mean fused-batch
//! occupancy, and the registry's resident-delta footprint. Guarded
//! adaptation is timed separately (`adapt` section): one adapt op costs
//! many orders of magnitude more than a predict and would otherwise
//! dominate every throughput figure while exercising none of the batching
//! under test.
//!
//! Self-asserts (release builds): fused batching is at least 2× unbatched
//! predict throughput at the largest tenant count, and a resident tenant
//! delta stays within 5% of the full model's parameter bytes.
//!
//! Run with: `cargo run --release -p tasfar-bench --bin serve`
//! (from the repo root, so `.cargo/config.toml` applies). Results go to
//! `BENCH_serve.json` or `TASFAR_BENCH_OUT`; `TASFAR_BENCH_QUICK` shrinks
//! the request counts for the verify.sh smoke gate.

use std::sync::Arc;
use std::time::Instant;

use tasfar_core::adapt::{calibrate_on_source, TasfarConfig};
use tasfar_core::session::TenantSession;
use tasfar_data::Dataset;
use tasfar_nn::adapter::{enable_adapters, AdapterConfig};
use tasfar_nn::init::Init;
use tasfar_nn::json::Json;
use tasfar_nn::layers::{Dense, Dropout, Relu, Sequential};
use tasfar_nn::rng::Rng;
use tasfar_nn::spec::DeltaArtifact;
use tasfar_nn::tensor::Tensor;
use tasfar_serve::registry::{register_prototypes, tenant_rng};
use tasfar_serve::{
    generate, CompletionKind, OpSpec, ServeConfig, ServeError, ServeRuntime, TrafficConfig,
    TrafficEvent,
};

const INPUT_DIM: usize = 8;
const ADAPTER_RANK: usize = 2;

/// The serving-scale model: ~268k parameters (≈2.1 MB — past L2, so the
/// unbatched path pays real weight-streaming per request), with a rank-2
/// delta of ≈33 KB landing visibly under the 5% per-tenant residency
/// criterion.
fn bench_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(INPUT_DIM, 512, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.1, rng))
        .add(Dense::new(512, 512, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.1, rng))
        .add(Dense::new(512, 1, Init::XavierUniform, rng))
}

/// A small synthetic source set — enough for `calibrate_on_source` to fit
/// τ and Q_s; serving throughput does not care about model quality.
fn source_dataset(rng: &mut Rng, n: usize) -> Dataset {
    let x = Tensor::rand_normal(n, INPUT_DIM, 0.0, 1.0, rng);
    let mut y = Tensor::zeros(n, 1);
    for i in 0..n {
        let mean: f64 = (0..INPUT_DIM).map(|j| x.get(i, j)).sum::<f64>() / INPUT_DIM as f64;
        y.set(i, 0, mean + rng.gaussian(0.0, 0.05));
    }
    Dataset::new(x, y)
}

/// Distinct per-prototype deltas with realistic payloads: captured from the
/// adapter-enabled model, then perturbed so each prototype actually moves
/// predictions (the apply cost is identical either way).
fn prototype_artifacts(source: &Sequential, count: usize) -> Vec<Arc<str>> {
    (0..count)
        .map(|p| {
            let mut rng = Rng::new(0x5EED_0000 + p as u64);
            let mut model = source.clone();
            enable_adapters(&mut model, &AdapterConfig::rank(ADAPTER_RANK), &mut rng);
            let mut artifact =
                DeltaArtifact::capture(&mut model, &AdapterConfig::rank(ADAPTER_RANK));
            for values in &mut artifact.values {
                for v in values.iter_mut() {
                    *v += rng.gaussian(0.0, 0.02);
                }
            }
            Arc::from(artifact.to_json().as_str())
        })
        .collect()
}

struct RunStats {
    predicts: u64,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    /// Mean predicts per fused batch, from the `serve.*` counters.
    occupancy_mean: f64,
    resident_tenants: usize,
    resident_bytes: u64,
    evictions: u64,
}

/// Replays `events` closed-loop through one worker: fill the queue until
/// typed backpressure, drain one work item, repeat. Nothing is shed — an
/// `Overloaded` submit is retried after the next drain, so every variant
/// serves the identical request set.
fn run_traffic(rt: &Arc<ServeRuntime>, events: &[TrafficEvent], seed: u64) -> RunStats {
    let mut worker = rt.worker(seed);
    let batches_before = tasfar_obs::metrics::counter("serve.batches").get();
    let fused_before = tasfar_obs::metrics::counter("serve.batch.requests").get();
    let mut lat_ns: Vec<u64> = Vec::with_capacity(events.len());
    let mut payload_rng = Rng::new(seed ^ 0x70AD);
    let mut i = 0usize;
    let t0 = Instant::now();
    while i < events.len() {
        while i < events.len() {
            let result = match events[i].op {
                OpSpec::Predict { tenant } => rt.submit_predict(
                    tenant,
                    Tensor::rand_normal(1, INPUT_DIM, 0.0, 1.0, &mut payload_rng),
                ),
                OpSpec::Adapt { tenant } => {
                    let mut rng = tenant_rng(seed, tenant);
                    rt.submit_adapt(
                        tenant,
                        Tensor::rand_normal(64, INPUT_DIM, 0.0, 1.0, &mut rng),
                    )
                }
                OpSpec::Evict { tenant } => rt.submit_evict(tenant),
            };
            match result {
                Ok(_) => i += 1,
                Err(ServeError::Overloaded { .. }) => break,
                Err(e) => panic!("bench submit failed: {e}"),
            }
        }
        for c in worker.process_next() {
            if let CompletionKind::Predict { output, .. } = c.kind {
                lat_ns.push(c.latency_ns);
                worker.recycle(output);
            }
        }
    }
    loop {
        let done = worker.process_next();
        if done.is_empty() {
            break;
        }
        for c in done {
            if let CompletionKind::Predict { output, .. } = c.kind {
                lat_ns.push(c.latency_ns);
                worker.recycle(output);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    lat_ns.sort_unstable();
    let rank = |q: f64| {
        // Nearest-rank percentile over the sorted latencies.
        let n = lat_ns.len();
        lat_ns[((q * n as f64).ceil() as usize).clamp(1, n) - 1]
    };
    let batches = tasfar_obs::metrics::counter("serve.batches").get() - batches_before;
    let fused = tasfar_obs::metrics::counter("serve.batch.requests").get() - fused_before;
    let stats = rt.registry().stats();
    RunStats {
        predicts: lat_ns.len() as u64,
        ops_per_sec: lat_ns.len() as f64 / wall,
        p50_ns: rank(0.50),
        p99_ns: rank(0.99),
        occupancy_mean: if batches == 0 {
            0.0
        } else {
            fused as f64 / batches as f64
        },
        resident_tenants: stats.resident_tenants,
        resident_bytes: stats.resident_bytes,
        evictions: stats.evictions,
    }
}

fn main() {
    let quick = std::env::var("TASFAR_BENCH_QUICK").is_ok();
    let cpus = tasfar_obs::host_cpus();
    let requests: usize = if quick { 256 } else { 4096 };
    let batch_window = 256usize;
    let tenant_counts: [u64; 3] = [10, 1_000, 100_000];
    println!(
        "host cpus: {cpus}; {requests} requests per run{}",
        if quick { " (quick)" } else { "" }
    );

    // --- shared fixtures --------------------------------------------------
    let mut rng = Rng::new(0x5E127E);
    let mut model = bench_model(&mut rng);
    let source = source_dataset(&mut rng, 96);
    let cfg = TasfarConfig {
        mc_samples: 4,
        epochs: 2,
        segments: 8,
        grid_cell: 0.1,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("bench calibration");
    let session = TenantSession::new(calib, cfg, AdapterConfig::rank(ADAPTER_RANK));
    let prototypes = prototype_artifacts(&model, 8);
    let delta_bytes = DeltaArtifact::from_json(&prototypes[0])
        .expect("prototype roundtrip")
        .payload_bytes() as u64;

    let runtime_for = |window: usize, tenants: u64| -> Arc<ServeRuntime> {
        let rt = ServeRuntime::new(
            model.clone(),
            session.clone(),
            ServeConfig {
                shards: 64,
                queue_depth: 2048,
                batch_window: window,
                // Generous enough that steady-state Zipf traffic parses
                // each distinct tenant's cold delta once instead of
                // thrashing the LRU (the JSON rehydration cost would
                // otherwise dominate both variants identically).
                resident_budget_bytes: 64 << 20,
            },
        );
        register_prototypes(rt.registry(), tenants, &prototypes);
        rt
    };

    let full_model_bytes = runtime_for(1, 1).worker(0).full_model_bytes();
    let delta_frac = delta_bytes as f64 / full_model_bytes as f64;
    println!(
        "model {full_model_bytes} B, per-tenant delta {delta_bytes} B ({:.1}% of model)",
        100.0 * delta_frac
    );

    // --- predict throughput grid -----------------------------------------
    // Predict-only traffic with a sliver of evictions: adapt ops cost
    // orders of magnitude more than a predict and are timed separately
    // below, so they would only blur the batching comparison here.
    let mut rows: Vec<Json> = Vec::new();
    let mut speedup_at_largest = 0.0f64;
    for &tenants in &tenant_counts {
        let traffic = generate(&TrafficConfig {
            tenants,
            requests,
            zipf_s: 1.2,
            adapt_frac: 0.0,
            evict_frac: 0.005,
            seed: 0xA11CE,
            ..TrafficConfig::default()
        });
        let mut ops = [0.0f64; 2];
        for (vi, (variant, window)) in [("unbatched", 1usize), ("batched", batch_window)]
            .iter()
            .enumerate()
        {
            let rt = runtime_for(*window, tenants);
            let stats = run_traffic(&rt, &traffic, 0xD00E + tenants);
            ops[vi] = stats.ops_per_sec;
            println!(
                "tenants {tenants:>6} {variant:<9} {:>9.0} predicts/s  p50 {:>8} ns  p99 {:>9} ns  \
                 occupancy {:>5.1}  resident {} ({} B)",
                stats.ops_per_sec,
                stats.p50_ns,
                stats.p99_ns,
                stats.occupancy_mean,
                stats.resident_tenants,
                stats.resident_bytes
            );
            rows.push(Json::obj(vec![
                ("task", Json::from("serve")),
                ("size", Json::from(format!("tenants:{tenants}"))),
                ("variant", Json::from(*variant)),
                ("requests", Json::from(stats.predicts)),
                ("ops_per_sec", Json::Num(stats.ops_per_sec)),
                ("p50_ns", Json::UInt(stats.p50_ns)),
                ("p99_ns", Json::UInt(stats.p99_ns)),
                ("batch_occupancy_mean", Json::Num(stats.occupancy_mean)),
                ("resident_tenants", Json::from(stats.resident_tenants)),
                ("resident_bytes", Json::UInt(stats.resident_bytes)),
                ("evictions", Json::UInt(stats.evictions)),
            ]));
        }
        let speedup = ops[1] / ops[0];
        println!("tenants {tenants:>6} batched speedup: {speedup:.2}x");
        if tenants == *tenant_counts.last().unwrap() {
            speedup_at_largest = speedup;
        }
    }

    // --- guarded adaptation, timed separately -----------------------------
    let adapt_ops = if quick { 1 } else { 3 };
    let rt = runtime_for(batch_window, 64);
    let mut worker = rt.worker(0xADA);
    let mut adapt_ms = Vec::with_capacity(adapt_ops);
    let mut outcomes: Vec<(String, Json)> = Vec::new();
    for t in 0..adapt_ops as u64 {
        let mut batch_rng = tenant_rng(0xADA, t);
        rt.submit_adapt(
            t,
            Tensor::rand_normal(64, INPUT_DIM, 0.0, 1.0, &mut batch_rng),
        )
        .expect("adapt admit");
        let t0 = Instant::now();
        let done = worker.process_next();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        adapt_ms.push(ms);
        if let CompletionKind::Adapt { outcome } = &done[0].kind {
            println!("adapt tenant {t}: {outcome} in {ms:.0} ms");
            outcomes.push((format!("tenant_{t}"), Json::from(*outcome)));
        }
    }
    let adapt_ms_mean = adapt_ms.iter().sum::<f64>() / adapt_ms.len() as f64;

    // --- self-checks -------------------------------------------------------
    // (Debug builds are exempt: they measure the allocator, not the engine.)
    assert!(
        cfg!(debug_assertions) || speedup_at_largest >= 2.0,
        "fused batching must be >= 2x unbatched predict throughput at \
         {} tenants, measured {speedup_at_largest:.2}x",
        tenant_counts.last().unwrap()
    );
    assert!(
        delta_frac <= 0.05,
        "per-tenant resident delta ({delta_bytes} B) must stay within 5% of \
         the full model ({full_model_bytes} B), measured {:.1}%",
        100.0 * delta_frac
    );

    // --- report -----------------------------------------------------------
    let doc = Json::obj(vec![
        ("host_cpus", Json::from(cpus)),
        ("requests_per_run", Json::from(requests)),
        ("batch_window", Json::from(batch_window)),
        ("zipf_s", Json::Num(1.2)),
        ("results", Json::Arr(rows)),
        (
            "model",
            Json::obj(vec![
                ("full_model_bytes", Json::UInt(full_model_bytes)),
                ("delta_bytes", Json::UInt(delta_bytes)),
                ("delta_frac_of_model", Json::Num(delta_frac)),
                ("adapter_rank", Json::from(ADAPTER_RANK)),
            ]),
        ),
        (
            "adapt",
            Json::obj(vec![
                ("ops", Json::from(adapt_ops)),
                ("adapt_ms_mean", Json::Num(adapt_ms_mean)),
                ("outcomes", Json::Obj(outcomes)),
            ]),
        ),
        // Every serve.* counter/gauge/histogram the runs above touched —
        // queue admissions, batches, evictions, rehydrations — as
        // provenance for the rows.
        (
            "serve_metrics",
            tasfar_obs::metrics::snapshot_prefixed("serve."),
        ),
    ]);
    let out_path = std::env::var("TASFAR_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out_path, format!("{doc}\n"))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path} (batched speedup at largest: {speedup_at_largest:.2}x)");
}
