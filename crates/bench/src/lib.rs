//! # tasfar-bench — the experiment harness of the TASFAR reproduction
//!
//! One module per group of paper experiments (see `DESIGN.md` §3 for the
//! experiment index). The `repro` binary drives them:
//!
//! ```text
//! cargo run -p tasfar-bench --release --bin repro -- all          # everything
//! cargo run -p tasfar-bench --release --bin repro -- fig7 table1  # selected
//! cargo run -p tasfar-bench --release --bin repro -- --quick all  # smoke test
//! ```
//!
//! Criterion micro-benchmarks of the performance-critical kernels live under
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod schemes;
pub mod tasks;
pub mod viz;
