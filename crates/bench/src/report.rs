//! Result formatting: aligned console tables plus CSV/JSON artefacts under
//! `results/`.

use std::fs;
use std::path::PathBuf;

use tasfar_nn::json::Json;

/// The five pipeline-stage histogram names, as registered by
/// `tasfar-core`'s `PipelineTrace` (`pipeline.stage_ns.<stage>`). Kept here
/// so the observability crate stays ignorant of core's naming.
pub const STAGE_HISTOGRAMS: &[(&str, &str)] = &[
    ("predict", "pipeline.stage_ns.predict"),
    ("split", "pipeline.stage_ns.split"),
    ("estimate_density", "pipeline.stage_ns.estimate_density"),
    ("pseudo_label", "pipeline.stage_ns.pseudo_label"),
    ("fine_tune", "pipeline.stage_ns.fine_tune"),
];

/// Per-stage latency percentiles from the live metrics registry, as a JSON
/// object `{stage: {count, p50, p90, p99}}` (nanoseconds). Stages that never
/// ran are omitted, so quick sweeps produce compact sections and `bench-diff`
/// only holds the line on stages the baseline actually exercised.
pub fn stage_latency_json() -> Json {
    let mut stages: Vec<(String, Json)> = Vec::new();
    for &(stage, histogram) in STAGE_HISTOGRAMS {
        let h = tasfar_obs::metrics::histogram(histogram);
        if h.count() == 0 {
            continue;
        }
        let mut stats: Vec<(String, Json)> = vec![("count".into(), Json::UInt(h.count()))];
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            if let Some(v) = h.percentile(q) {
                stats.push((label.into(), Json::Num(v)));
            }
        }
        stages.push((stage.into(), Json::Obj(stats)));
    }
    Json::Obj(stages)
}

/// A printable, saveable results table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (used as the artefact file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "Table '{}': row has {} cells, expected {}",
            self.title,
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Formats the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV under `results/<stem>.csv` and returns the
    /// path. The stem is derived from the title (lowercased, spaces → `_`).
    pub fn save_csv(&self) -> PathBuf {
        let stem: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = results_dir().join(format!("{stem}.csv"));
        let mut csv = String::new();
        csv.push_str(&self.headers.join(","));
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        fs::write(&path, csv).expect("writing results CSV");
        path
    }
}

/// The `results/` directory (created on first use). Honours
/// `TASFAR_RESULTS_DIR` so tests can redirect artefacts.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TASFAR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("creating results directory");
    dir
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 4 decimals for table cells.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len().max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1.00".into()]);
        t.row(vec!["b".into(), "22.50".into()]);
        let r = t.render();
        assert!(r.contains("Demo"));
        assert!(r.contains("alpha"));
        let lines: Vec<&str> = r.lines().collect();
        // Header + separator + 2 rows + title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.row(vec!["only".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        std::env::set_var(
            "TASFAR_RESULTS_DIR",
            std::env::temp_dir().join("tasfar_test_results"),
        );
        let mut t = Table::new("CSV Test", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.save_csv();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::env::remove_var("TASFAR_RESULTS_DIR");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[2.0, 2.0]), 0.0);
        assert!((std_dev(&[0.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f4(0.123456), "0.1235");
    }
}
