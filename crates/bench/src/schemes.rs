//! Uniform scheme runner: adapts a fresh copy of the source model with any
//! of the six schemes of the paper's comparison (Baseline = no adaptation).

use tasfar_baselines::{
    record_source_stats, AdvAdapter, AugfreeAdapter, BaselineConfig, DatafreeAdapter,
    DomainAdapter, MmdAdapter,
};
use tasfar_core::prelude::*;
use tasfar_data::Dataset;
use tasfar_nn::layers::Sequential;
use tasfar_nn::loss::Loss;
use tasfar_nn::tensor::Tensor;

/// The schemes compared throughout Section IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The unadapted source model.
    Baseline,
    /// Source-based MMD feature alignment.
    Mmd,
    /// Source-based adversarial feature alignment.
    Adv,
    /// Source-free feature-histogram restoration.
    Datafree,
    /// Source-free augmentation consistency.
    Augfree,
    /// The paper's contribution.
    Tasfar,
}

impl Scheme {
    /// The scheme's display name (as used in the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Mmd => "MMD",
            Scheme::Adv => "ADV",
            Scheme::Datafree => "Datafree",
            Scheme::Augfree => "AUGfree",
            Scheme::Tasfar => "TASFAR",
        }
    }

    /// All six schemes in the paper's table order.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::Baseline,
            Scheme::Mmd,
            Scheme::Adv,
            Scheme::Augfree,
            Scheme::Datafree,
            Scheme::Tasfar,
        ]
    }
}

/// Everything a scheme run needs.
pub struct SchemeRun<'a> {
    /// The trained source model (copied, never mutated).
    pub source_model: &'a Sequential,
    /// The (scaled) source dataset — used by source-based schemes and for
    /// Datafree's stored statistics.
    pub source: &'a Dataset,
    /// Unlabeled target adaptation inputs (scaled).
    pub target_x: &'a Tensor,
    /// TASFAR calibration (already computed on the source side).
    pub calib: &'a SourceCalibration,
    /// TASFAR hyper-parameters.
    pub tasfar: &'a TasfarConfig,
    /// Feature/head split index for the feature-alignment baselines.
    pub split_at: usize,
    /// Task loss.
    pub loss: &'a dyn Loss,
    /// Seed for the scheme's stochastic components.
    pub seed: u64,
}

/// Adapts a fresh copy of the source model with the given scheme and
/// returns the adapted model.
pub fn run_scheme(scheme: Scheme, run: &SchemeRun<'_>) -> Sequential {
    let mut model = run.source_model.clone();
    // Feature-alignment objectives are not anchored to the regression
    // solution the way TASFAR's label-space fine-tune is; each scheme runs
    // at the gentlest hyper-parameters that maximise its own performance
    // (grid-searched on a held-out user subset) — more aggressive settings
    // degrade them catastrophically.
    let base = |epochs: usize, lr: f64| BaselineConfig {
        split_at: run.split_at,
        epochs,
        batch_size: 32,
        learning_rate: lr,
        seed: run.seed,
        ..BaselineConfig::default()
    };
    match scheme {
        Scheme::Baseline => {}
        Scheme::Mmd => {
            MmdAdapter::new(base(8, 1e-5), 0.3).adapt(
                &mut model,
                Some(run.source),
                run.target_x,
                run.loss,
            );
        }
        Scheme::Adv => {
            AdvAdapter::new(base(15, 1e-4), 0.1, 32).adapt(
                &mut model,
                Some(run.source),
                run.target_x,
                run.loss,
            );
        }
        Scheme::Datafree => {
            let stats = record_source_stats(&mut model, run.source, run.split_at, 16);
            DatafreeAdapter::new(base(5, 1e-5), stats).adapt(
                &mut model,
                None,
                run.target_x,
                run.loss,
            );
        }
        Scheme::Augfree => {
            AugfreeAdapter::new(base(8, 2e-5), 0.1).adapt(&mut model, None, run.target_x, run.loss);
        }
        Scheme::Tasfar => {
            let mut cfg = run.tasfar.clone();
            cfg.seed = run.seed;
            let _ = adapt(&mut model, run.calib, run.target_x, run.loss, &cfg);
        }
    }
    model
}
