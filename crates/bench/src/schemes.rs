//! Uniform scheme runner: adapts a fresh copy of the source model with any
//! of the six schemes of the paper's comparison (Baseline = no adaptation).
//!
//! Every run goes through the fault-tolerant path: TASFAR runs under
//! [`adapt_guarded`] (retry + source-checkpoint fallback), and a baseline
//! whose adapter reports a typed [`AdaptError`] degrades to the unmodified
//! source model instead of crashing the sweep. Each run's outcome label is
//! appended to the process-wide [`outcome_log`], which `repro` drains into
//! `results/repro_metrics.json`.

use std::sync::Mutex;

use tasfar_baselines::{
    record_source_stats, AdvAdapter, AugfreeAdapter, BaselineConfig, DatafreeAdapter,
    DomainAdapter, MmdAdapter,
};
use tasfar_core::error::AdaptError;
use tasfar_core::prelude::*;
use tasfar_data::Dataset;
use tasfar_nn::layers::Sequential;
use tasfar_nn::loss::Loss;
use tasfar_nn::tensor::Tensor;

/// The schemes compared throughout Section IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The unadapted source model.
    Baseline,
    /// Source-based MMD feature alignment.
    Mmd,
    /// Source-based adversarial feature alignment.
    Adv,
    /// Source-free feature-histogram restoration.
    Datafree,
    /// Source-free augmentation consistency.
    Augfree,
    /// The paper's contribution.
    Tasfar,
}

impl Scheme {
    /// The scheme's display name (as used in the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Mmd => "MMD",
            Scheme::Adv => "ADV",
            Scheme::Datafree => "Datafree",
            Scheme::Augfree => "AUGfree",
            Scheme::Tasfar => "TASFAR",
        }
    }

    /// All six schemes in the paper's table order.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::Baseline,
            Scheme::Mmd,
            Scheme::Adv,
            Scheme::Augfree,
            Scheme::Datafree,
            Scheme::Tasfar,
        ]
    }
}

/// Everything a scheme run needs.
pub struct SchemeRun<'a> {
    /// The trained source model (copied, never mutated).
    pub source_model: &'a Sequential,
    /// The (scaled) source dataset — used by source-based schemes and for
    /// Datafree's stored statistics.
    pub source: &'a Dataset,
    /// Unlabeled target adaptation inputs (scaled).
    pub target_x: &'a Tensor,
    /// TASFAR calibration (already computed on the source side).
    pub calib: &'a SourceCalibration,
    /// TASFAR hyper-parameters.
    pub tasfar: &'a TasfarConfig,
    /// Feature/head split index for the feature-alignment baselines.
    pub split_at: usize,
    /// Task loss.
    pub loss: &'a dyn Loss,
    /// Seed for the scheme's stochastic components.
    pub seed: u64,
}

/// Process-wide log of per-run adaptation outcomes, one entry per
/// [`run_scheme`] call: `(scheme name, outcome label, resident bytes)`.
/// Labels are `"adapted"`, `"recovered:<retries>"`, or `"fell_back"`
/// (`"baseline"` for the unadapted reference); resident bytes is the
/// per-run adapted-state footprint — the full parameter set for a model
/// clone, or just the factor payload when the run adapted a low-rank
/// delta ([`tasfar_nn::adapter`]). `repro` drains this into
/// `results/repro_metrics.json` so a saved run shows exactly which
/// adaptations needed the recovery machinery and what each one cost to
/// keep resident.
pub mod outcome_log {
    use super::OUTCOMES;

    /// Appends one outcome record.
    pub fn record(scheme: &str, outcome: String, resident_bytes: u64) {
        let mut log = OUTCOMES.lock().unwrap_or_else(|e| e.into_inner());
        log.push((scheme.to_string(), outcome, resident_bytes));
    }

    /// Takes every record logged so far, leaving the log empty.
    pub fn drain() -> Vec<(String, String, u64)> {
        let mut log = OUTCOMES.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *log)
    }
}

static OUTCOMES: Mutex<Vec<(String, String, u64)>> = Mutex::new(Vec::new());

/// The bytes a scheme run's adapted state keeps resident: the delta
/// payload when adapters are attached, the full trainable parameter set
/// otherwise.
pub fn resident_bytes(model: &mut Sequential) -> u64 {
    if model.has_adapters() {
        tasfar_nn::adapter::delta_footprint(model).1
    } else {
        (model.num_parameters() * std::mem::size_of::<f64>()) as u64
    }
}

/// Turns a baseline adapter result into an outcome label, restoring the
/// source model on failure (the same do-no-harm contract the guarded
/// TASFAR path provides).
fn settle_baseline(
    result: Result<(), AdaptError>,
    model: &mut Sequential,
    source_model: &Sequential,
    scheme: Scheme,
) -> String {
    match result {
        Ok(()) => "adapted".to_string(),
        Err(err) => {
            eprintln!(
                "[warn] {} adaptation failed ({err}); keeping source model",
                scheme.name()
            );
            *model = source_model.clone();
            "fell_back".to_string()
        }
    }
}

/// Adapts a fresh copy of the source model with the given scheme and
/// returns the adapted model.
///
/// Never panics on degenerate batches: TASFAR runs under [`adapt_guarded`]
/// and the baselines fall back to the source model when their adapter
/// reports an error. The outcome label is recorded in [`outcome_log`].
pub fn run_scheme(scheme: Scheme, run: &SchemeRun<'_>) -> Sequential {
    let mut model = run.source_model.clone();
    // Feature-alignment objectives are not anchored to the regression
    // solution the way TASFAR's label-space fine-tune is; each scheme runs
    // at the gentlest hyper-parameters that maximise its own performance
    // (grid-searched on a held-out user subset) — more aggressive settings
    // degrade them catastrophically.
    let base = |epochs: usize, lr: f64| BaselineConfig {
        split_at: run.split_at,
        epochs,
        batch_size: 32,
        learning_rate: lr,
        seed: run.seed,
        ..BaselineConfig::default()
    };
    let outcome = match scheme {
        Scheme::Baseline => "baseline".to_string(),
        Scheme::Mmd => {
            let result = MmdAdapter::new(base(8, 1e-5), 0.3).adapt(
                &mut model,
                Some(run.source),
                run.target_x,
                run.loss,
            );
            settle_baseline(result, &mut model, run.source_model, scheme)
        }
        Scheme::Adv => {
            let result = AdvAdapter::new(base(15, 1e-4), 0.1, 32).adapt(
                &mut model,
                Some(run.source),
                run.target_x,
                run.loss,
            );
            settle_baseline(result, &mut model, run.source_model, scheme)
        }
        Scheme::Datafree => {
            let stats = record_source_stats(&mut model, run.source, run.split_at, 16);
            let result = DatafreeAdapter::new(base(5, 1e-5), stats).adapt(
                &mut model,
                None,
                run.target_x,
                run.loss,
            );
            settle_baseline(result, &mut model, run.source_model, scheme)
        }
        Scheme::Augfree => {
            let result = AugfreeAdapter::new(base(8, 2e-5), 0.1).adapt(
                &mut model,
                None,
                run.target_x,
                run.loss,
            );
            settle_baseline(result, &mut model, run.source_model, scheme)
        }
        Scheme::Tasfar => {
            let mut cfg = run.tasfar.clone();
            cfg.seed = run.seed;
            let guarded = adapt_guarded(
                &mut model,
                run.calib,
                run.target_x,
                run.loss,
                &cfg,
                &RecoveryPolicy::default(),
            );
            match &guarded {
                GuardedOutcome::Recovered { retries, .. } => format!("recovered:{retries}"),
                other => other.label().to_string(),
            }
        }
    };
    let bytes = resident_bytes(&mut model);
    outcome_log::record(scheme.name(), outcome, bytes);
    model
}
