//! Shared task setups: dataset generation, source-model architecture and
//! training, and TASFAR calibration for each of the four workloads.
//!
//! Every experiment module starts from one of these contexts, so the source
//! models are trained exactly once per `repro` invocation and reused across
//! figures.

use tasfar_core::prelude::*;
use tasfar_data::crowd::{self, CrowdConfig, CrowdWorld};
use tasfar_data::housing::{self, HousingConfig, HousingWorld};
use tasfar_data::pdr::{self, PdrConfig, PdrUser, PdrWorld, Trajectory};
use tasfar_data::taxi::{self, TaxiConfig, TaxiWorld};
use tasfar_data::{Dataset, Scaler};
use tasfar_nn::prelude::*;

/// Experiment scale: `Full` reproduces the paper-sized runs; `Quick` shrinks
/// datasets and epochs ~4× for smoke-testing the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized experiments.
    Full,
    /// Reduced sizes for fast iteration.
    Quick,
}

impl Scale {
    fn div(self, n: usize) -> usize {
        match self {
            Scale::Full => n,
            Scale::Quick => (n / 4).max(2),
        }
    }
}

// ---------------------------------------------------------------------------
// PDR
// ---------------------------------------------------------------------------

/// The prepared PDR task: world, trained TCN source model, input scaler, and
/// TASFAR calibration.
pub struct PdrContext {
    /// The simulated world.
    pub world: PdrWorld,
    /// The trained source model (TCN trunk + dense head).
    pub model: Sequential,
    /// Input scaler fitted on the source windows.
    pub scaler: Scaler,
    /// τ and Q_s calibrated on the source data.
    pub calib: SourceCalibration,
    /// TASFAR defaults for this task.
    pub tasfar: TasfarConfig,
    /// The scale the context was built at.
    pub scale: Scale,
}

/// The PDR regressor: two residual TCN blocks over the packed IMU window,
/// global average pooling, and a dropout-bearing dense head (the MC-dropout
/// uncertainty source).
pub fn pdr_model(cfg: &PdrConfig, rng: &mut Rng) -> Sequential {
    let t = cfg.time_len;
    Sequential::new()
        .add(TcnBlock::new(pdr::CHANNELS, 16, 3, 1, t, 0.1, rng))
        .add(TcnBlock::new(16, 16, 3, 2, t, 0.1, rng))
        .add(GlobalAvgPool1d::new(16, t))
        .add(Dense::new(16, 32, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(32, 2, Init::XavierUniform, rng))
}

/// Layer index splitting the PDR model into feature extractor and head for
/// the feature-alignment baselines (features = everything before the final
/// dense layer).
pub const PDR_SPLIT_AT: usize = 6;

/// TASFAR defaults for PDR: 10 cm grid, joint 2-D map.
pub fn pdr_tasfar_config(scale: Scale) -> TasfarConfig {
    TasfarConfig {
        grid_cell: 0.1,
        joint_2d: true,
        scenario_tau_rescale: true,
        learning_rate: 5e-4,
        epochs: scale.div(120),
        batch_size: 32,
        ..TasfarConfig::default()
    }
}

impl PdrContext {
    /// Generates the world, trains the source model, and calibrates TASFAR.
    pub fn build(scale: Scale) -> Self {
        let config = PdrConfig {
            n_seen: scale.div(15).max(3),
            n_unseen: scale.div(10).max(2),
            source_steps_per_user: scale.div(400),
            trajectories_per_user: 5,
            steps_per_trajectory: scale.div(80).max(20),
            ..PdrConfig::default()
        };
        let world = pdr::generate(&config);
        tasfar_obs::event(
            "context_ready",
            vec![
                ("task", "pdr".into()),
                ("seed", config.seed.into()),
                ("source_rows", world.source.len().into()),
                ("seen_users", world.seen_users.len().into()),
                ("unseen_users", world.unseen_users.len().into()),
            ],
        );
        let scaler = Scaler::fit(&world.source.x);
        let x = scaler.transform(&world.source.x);

        let mut rng = Rng::new(config.seed ^ 0x5eed);
        let mut model = pdr_model(&config, &mut rng);
        // Two-stage schedule: a long Adam run, then a lower-rate polish.
        // The regressor must avoid shrinkage toward the population-mean
        // stride on clean windows, otherwise the confident predictions —
        // TASFAR's label-distribution source — are biased.
        let mut opt = Adam::new(1e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &x,
            &world.source.y,
            None,
            &TrainConfig {
                epochs: scale.div(120).max(15),
                batch_size: 64,
                seed: 1,
                ..TrainConfig::default()
            },
        );
        let mut opt2 = Adam::new(2e-4);
        let _ = fit(
            &mut model,
            &mut opt2,
            &Mse,
            &x,
            &world.source.y,
            None,
            &TrainConfig {
                epochs: scale.div(60).max(8),
                batch_size: 64,
                seed: 2,
                ..TrainConfig::default()
            },
        );

        let tasfar = pdr_tasfar_config(scale);
        let scaled_source = Dataset::new(x, world.source.y.clone());
        let calib = calibrate_on_source(&mut model, &scaled_source, &tasfar)
            .expect("PDR source calibration succeeds on the generated world");
        PdrContext {
            world,
            model,
            scaler,
            calib,
            tasfar,
            scale,
        }
    }

    /// The scaled source dataset (inputs transformed by the context scaler).
    pub fn scaled_source(&self) -> Dataset {
        Dataset::new(
            self.scaler.transform(&self.world.source.x),
            self.world.source.y.clone(),
        )
    }

    /// A user's adaptation/test step datasets (80/20 trajectory split),
    /// inputs scaled. Returns `(adapt, test, test_trajectories)` where the
    /// trajectory list carries scaled per-trajectory datasets for RTE.
    pub fn user_splits(&self, user: &PdrUser) -> (Dataset, Dataset, Vec<Dataset>) {
        let (adapt_trajs, test_trajs) = user.adaptation_test_split(0.8);
        let scale_ds = |t: &Trajectory| {
            Dataset::new(self.scaler.transform(&t.windows), t.displacements.clone())
        };
        let adapt_parts: Vec<Dataset> = adapt_trajs.iter().map(|t| scale_ds(t)).collect();
        let test_parts: Vec<Dataset> = test_trajs.iter().map(|t| scale_ds(t)).collect();
        let adapt = Dataset::concat(&adapt_parts.iter().collect::<Vec<_>>());
        let test = Dataset::concat(&test_parts.iter().collect::<Vec<_>>());
        (adapt, test, test_parts)
    }
}

// ---------------------------------------------------------------------------
// Crowd counting
// ---------------------------------------------------------------------------

/// The prepared crowd-counting task.
pub struct CrowdContext {
    /// The simulated world (Part-A-like source, three Part-B-like scenes).
    pub world: CrowdWorld,
    /// The trained source model (dropout MLP over pooled features).
    pub model: Sequential,
    /// Input scaler fitted on source features.
    pub scaler: Scaler,
    /// τ and Q_s.
    pub calib: SourceCalibration,
    /// TASFAR defaults for this task.
    pub tasfar: TasfarConfig,
}

/// The crowd regressor: an MLP over the pooled density features.
pub fn crowd_model(rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(crowd::FEATURES, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 32, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(32, 1, Init::XavierUniform, rng))
}

/// Feature/head split for the baselines (features = first two blocks).
pub const CROWD_SPLIT_AT: usize = 6;

/// TASFAR defaults for crowd counting: 5-person grid cells.
pub fn crowd_tasfar_config(scale: Scale) -> TasfarConfig {
    TasfarConfig {
        grid_cell: 5.0,
        joint_2d: false,
        // Counts are strictly positive with a wide range: relative
        // uncertainty (coefficient of variation) tracks difficulty rather
        // than count magnitude.
        relative_uncertainty: true,
        scenario_tau_rescale: true,
        learning_rate: 1e-3,
        epochs: scale.div(120),
        batch_size: 32,
        ..TasfarConfig::default()
    }
}

impl CrowdContext {
    /// Generates the world, trains the source model, and calibrates TASFAR.
    pub fn build(scale: Scale) -> Self {
        Self::build_seeded(scale, CrowdConfig::default().seed)
    }

    /// [`CrowdContext::build`] with an explicit world seed (multi-seed runs).
    pub fn build_seeded(scale: Scale, seed: u64) -> Self {
        let config = CrowdConfig {
            n_source: scale.div(482).max(60),
            n_per_scene: scale.div(239).max(40),
            seed,
        };
        let world = crowd::generate(&config);
        tasfar_obs::event(
            "context_ready",
            vec![
                ("task", "crowd".into()),
                ("seed", config.seed.into()),
                ("source_rows", world.source.len().into()),
                ("scenes", world.scenes.len().into()),
            ],
        );
        let scaler = Scaler::fit(&world.source.x);
        let x = scaler.transform(&world.source.x);

        let mut rng = Rng::new(config.seed ^ 0xc0de);
        let mut model = crowd_model(&mut rng);
        let mut opt = Adam::new(1e-3);
        let _ = fit(
            &mut model,
            &mut opt,
            &Mse,
            &x,
            &world.source.y,
            None,
            &TrainConfig {
                epochs: scale.div(200).max(40),
                batch_size: 32,
                seed: 2,
                ..TrainConfig::default()
            },
        );

        let tasfar = crowd_tasfar_config(scale);
        let scaled_source = Dataset::new(x, world.source.y.clone());
        let calib = calibrate_on_source(&mut model, &scaled_source, &tasfar)
            .expect("crowd source calibration succeeds on the generated world");
        CrowdContext {
            world,
            model,
            scaler,
            calib,
            tasfar,
        }
    }

    /// The scaled source dataset.
    pub fn scaled_source(&self) -> Dataset {
        Dataset::new(
            self.scaler.transform(&self.world.source.x),
            self.world.source.y.clone(),
        )
    }

    /// A scene's 80/20 adaptation/test split, inputs scaled.
    pub fn scene_splits(&self, scene: usize, seed: u64) -> (Dataset, Dataset) {
        let data = &self.world.scenes[scene].data;
        let scaled = Dataset::new(self.scaler.transform(&data.x), data.y.clone());
        let mut rng = Rng::new(seed);
        scaled.split_fraction(0.8, &mut rng)
    }
}

// ---------------------------------------------------------------------------
// Tabular prediction tasks (housing, taxi)
// ---------------------------------------------------------------------------

/// A prepared tabular task (housing price or taxi duration).
pub struct TabularContext {
    /// Scaled source dataset.
    pub source: Dataset,
    /// Scaled target dataset (labels retained for evaluation only).
    pub target: Dataset,
    /// The trained source model.
    pub model: Sequential,
    /// τ and Q_s.
    pub calib: SourceCalibration,
    /// TASFAR defaults for this task.
    pub tasfar: TasfarConfig,
    /// Human-readable task name.
    pub name: &'static str,
}

/// The MLP used by both prediction tasks (after Poongodi et al., the
/// baseline model the paper cites for taxi-trip duration).
pub fn tabular_model(input_dim: usize, rng: &mut Rng) -> Sequential {
    Sequential::new()
        .add(Dense::new(input_dim, 64, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(64, 32, Init::HeNormal, rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, rng))
        .add(Dense::new(32, 1, Init::XavierUniform, rng))
}

/// Feature/head split for the baselines.
pub const TABULAR_SPLIT_AT: usize = 6;

#[allow(clippy::too_many_arguments)]
fn build_tabular(
    name: &'static str,
    source_raw: &Dataset,
    target_raw: &Dataset,
    grid_cell: f64,
    relative_uncertainty: bool,
    scenario_tau_rescale: bool,
    train_seed: u64,
    scale: Scale,
) -> TabularContext {
    let scaler = Scaler::fit(&source_raw.x);
    let source = Dataset::new(scaler.transform(&source_raw.x), source_raw.y.clone());
    let target = Dataset::new(scaler.transform(&target_raw.x), target_raw.y.clone());
    tasfar_obs::event(
        "context_ready",
        vec![
            ("task", name.into()),
            ("seed", train_seed.into()),
            ("source_rows", source.len().into()),
            ("target_rows", target.len().into()),
        ],
    );

    let mut rng = Rng::new(train_seed);
    let mut model = tabular_model(source.input_dim(), &mut rng);
    let mut opt = Adam::new(1e-3);
    let _ = fit(
        &mut model,
        &mut opt,
        &Mse,
        &source.x,
        &source.y,
        None,
        &TrainConfig {
            epochs: scale.div(150).max(25),
            batch_size: 64,
            seed: 3,
            ..TrainConfig::default()
        },
    );
    let mut opt2 = Adam::new(2e-4);
    let _ = fit(
        &mut model,
        &mut opt2,
        &Mse,
        &source.x,
        &source.y,
        None,
        &TrainConfig {
            epochs: scale.div(50).max(10),
            batch_size: 64,
            seed: 4,
            ..TrainConfig::default()
        },
    );

    let tasfar = TasfarConfig {
        grid_cell,
        joint_2d: false,
        relative_uncertainty,
        scenario_tau_rescale,
        learning_rate: 5e-4,
        epochs: scale.div(100),
        batch_size: 32,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &tasfar)
        .expect("tabular source calibration succeeds on the generated world");
    TabularContext {
        source,
        target,
        model,
        calib,
        tasfar,
        name,
    }
}

/// Builds the California-housing task (coastal target).
pub fn housing_context(scale: Scale) -> TabularContext {
    housing_context_seeded(scale, HousingConfig::default().seed)
}

/// [`housing_context`] with an explicit world seed (multi-seed runs).
pub fn housing_context_seeded(scale: Scale, seed: u64) -> TabularContext {
    let config = HousingConfig {
        n_districts: scale.div(8000).max(1000),
        seed,
        ..HousingConfig::default()
    };
    let world: HousingWorld = housing::generate(&config);
    // Relative uncertainty isolates the corrupted-measurement districts
    // (absolute dropout std would select by price magnitude instead and
    // censor the label prior).
    build_tabular(
        "housing",
        &world.source,
        &world.target,
        0.1,
        true,
        false,
        0x4057,
        scale,
    )
}

/// Builds the NYC-taxi task (Manhattan target).
pub fn taxi_context(scale: Scale) -> TabularContext {
    taxi_context_seeded(scale, TaxiConfig::default().seed)
}

/// [`taxi_context`] with an explicit world seed (multi-seed runs).
pub fn taxi_context_seeded(scale: Scale, seed: u64) -> TabularContext {
    let config = TaxiConfig {
        n_trips: scale.div(12_000).max(2000),
        seed,
    };
    let world: TaxiWorld = taxi::generate(&config);
    // Trip durations span 1–180 minutes: dropout variance scales with the
    // predicted magnitude, so the relative (coefficient-of-variation) form
    // with scenario recentering tracks difficulty instead of trip length.
    build_tabular(
        "taxi",
        &world.source,
        &world.target,
        2.0,
        true,
        true,
        0x7a41,
        scale,
    )
}
