//! Criterion benches of label-density-map construction — the kernel whose
//! cost the paper analyses as O(n/g) (Sec. IV-B1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tasfar_core::prelude::*;
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

fn bench_map_1d(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let preds: Vec<f64> = (0..2000).map(|_| rng.gaussian(0.0, 1.0)).collect();
    let sigmas: Vec<f64> = (0..2000).map(|_| rng.uniform(0.05, 0.3)).collect();

    let mut group = c.benchmark_group("density_map_1d");
    for &cell in &[0.01, 0.05, 0.2] {
        group.bench_with_input(BenchmarkId::new("estimate", cell), &cell, |b, &cell| {
            let spec = GridSpec::from_range(-4.0, 4.0, cell);
            b.iter(|| {
                DensityMap1d::estimate(
                    black_box(&preds),
                    black_box(&sigmas),
                    spec.clone(),
                    ErrorModel::Gaussian,
                )
            })
        });
    }
    group.bench_function("from_labels", |b| {
        let spec = GridSpec::from_range(-4.0, 4.0, 0.05);
        b.iter(|| DensityMap1d::from_labels(black_box(&preds), spec.clone()))
    });
    group.finish();
}

fn bench_map_2d(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let preds = Tensor::rand_normal(500, 2, 0.0, 0.7, &mut rng);
    let sigmas = Tensor::rand_uniform(500, 2, 0.05, 0.2, &mut rng);
    c.bench_function("density_map_2d_estimate_500x(24x24)", |b| {
        b.iter(|| {
            DensityMap2d::estimate(
                black_box(&preds),
                black_box(&sigmas),
                GridSpec::from_range(-1.2, 1.2, 0.1),
                GridSpec::from_range(-1.2, 1.2, 0.1),
                ErrorModel::Gaussian,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_map_1d, bench_map_2d
}
criterion_main!(benches);
