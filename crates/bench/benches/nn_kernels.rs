//! Criterion benches of the substrate's hot kernels: matmul, the causal
//! convolution, a TCN block round trip, and a dense training step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tasfar_nn::prelude::*;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(5);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128, 256] {
        let a = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(n, n, 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    group.finish();
}

fn bench_conv1d(c: &mut Criterion) {
    let mut rng = Rng::new(6);
    let mut conv = Conv1d::new(6, 16, 3, 1, 20, &mut rng);
    let x = Tensor::rand_normal(64, 120, 0.0, 1.0, &mut rng);
    c.bench_function("conv1d_fwd_64x6x20", |b| {
        b.iter(|| conv.forward(black_box(&x), Mode::Eval))
    });
    c.bench_function("conv1d_fwd_bwd_64x6x20", |b| {
        let g = Tensor::rand_normal(64, 320, 0.0, 1.0, &mut rng);
        b.iter(|| {
            let _ = conv.forward(black_box(&x), Mode::Train);
            conv.backward(black_box(&g))
        })
    });
}

fn bench_tcn_block(c: &mut Criterion) {
    let mut rng = Rng::new(7);
    let mut block = TcnBlock::new(6, 16, 3, 1, 20, 0.1, &mut rng);
    let x = Tensor::rand_normal(64, 120, 0.0, 1.0, &mut rng);
    c.bench_function("tcn_block_fwd_64", |b| {
        b.iter(|| block.forward(black_box(&x), Mode::Eval))
    });
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = Rng::new(8);
    let mut model = Sequential::new()
        .add(Dense::new(64, 64, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dense::new(64, 32, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dense::new(32, 1, Init::XavierUniform, &mut rng));
    let mut opt = Adam::new(1e-3);
    let x = Tensor::rand_normal(32, 64, 0.0, 1.0, &mut rng);
    let y = Tensor::rand_normal(32, 1, 0.0, 1.0, &mut rng);
    c.bench_function("mlp_train_step_b32", |b| {
        b.iter(|| {
            model.zero_grad();
            let pred = model.forward(black_box(&x), Mode::Train);
            let grad = Mse.grad(&pred, &y, None);
            model.backward(&grad);
            opt.step(&mut model.params_mut());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv1d, bench_tcn_block, bench_training_step
}
criterion_main!(benches);
