//! Criterion benches of pseudo-label generation (Algorithm 3 throughput).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tasfar_core::prelude::*;
use tasfar_nn::rng::Rng;
use tasfar_nn::tensor::Tensor;

fn bench_pseudo_1d(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let labels: Vec<f64> = (0..5000).map(|_| rng.gaussian(0.5, 0.3)).collect();
    let map = DensityMap1d::from_labels(&labels, GridSpec::from_range(-1.0, 2.0, 0.02));
    let generator = PseudoLabelGenerator1d::new(&map, 0.1, ErrorModel::Gaussian);
    let queries: Vec<(f64, f64, f64)> = (0..256)
        .map(|_| (rng.gaussian(0.5, 0.4), rng.uniform(0.05, 0.3), rng.uniform(0.11, 0.5)))
        .collect();
    c.bench_function("pseudo_label_1d_256", |b| {
        b.iter(|| {
            for &(p, s, u) in &queries {
                black_box(generator.generate(p, s, u));
            }
        })
    });
}

fn bench_pseudo_2d(c: &mut Criterion) {
    let mut rng = Rng::new(4);
    let mut rows = Vec::new();
    for _ in 0..5000 {
        let theta = rng.uniform(0.0, std::f64::consts::TAU);
        let r = rng.gaussian(0.7, 0.05);
        rows.push(vec![r * theta.cos(), r * theta.sin()]);
    }
    let labels = Tensor::from_rows(&rows);
    let map = DensityMap2d::from_labels(
        &labels,
        GridSpec::from_range(-1.2, 1.2, 0.05),
        GridSpec::from_range(-1.2, 1.2, 0.05),
    );
    let generator = PseudoLabelGenerator2d::new(&map, 0.1, ErrorModel::Gaussian);
    let queries: Vec<([f64; 2], [f64; 2], f64)> = (0..256)
        .map(|_| {
            (
                [rng.gaussian(0.0, 0.7), rng.gaussian(0.0, 0.7)],
                [rng.uniform(0.05, 0.2), rng.uniform(0.05, 0.2)],
                rng.uniform(0.11, 0.5),
            )
        })
        .collect();
    c.bench_function("pseudo_label_2d_256", |b| {
        b.iter(|| {
            for &(p, s, u) in &queries {
                black_box(generator.generate(p, s, u));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pseudo_1d, bench_pseudo_2d
}
criterion_main!(benches);
