//! Criterion bench of the complete TASFAR adaptation on a small target
//! batch (calibration excluded — it is a one-time source-side cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tasfar_core::prelude::*;
use tasfar_data::Dataset;
use tasfar_nn::prelude::*;

fn setup() -> (Sequential, SourceCalibration, Tensor, TasfarConfig) {
    let mut rng = Rng::new(10);
    let n = 400;
    let mut xs = Tensor::zeros(n, 2);
    let mut ys = Tensor::zeros(n, 1);
    for i in 0..n {
        let y = rng.uniform(-1.0, 1.0);
        let hard = rng.bernoulli(0.05);
        let noise = if hard { rng.gaussian(0.0, 0.8) } else { rng.gaussian(0.0, 0.03) };
        xs.set(i, 0, y + noise);
        xs.set(i, 1, if hard { rng.uniform(3.0, 5.0) } else { rng.uniform(0.0, 0.5) });
        ys.set(i, 0, y);
    }
    let source = Dataset::new(xs, ys);
    let mut model = Sequential::new()
        .add(Dense::new(2, 32, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(32, 1, Init::XavierUniform, &mut rng));
    let mut opt = Adam::new(5e-3);
    let _ = fit(
        &mut model,
        &mut opt,
        &Mse,
        &source.x,
        &source.y,
        None,
        &TrainConfig { epochs: 60, batch_size: 32, ..TrainConfig::default() },
    );
    let cfg = TasfarConfig {
        grid_cell: 0.05,
        epochs: 20,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg);

    let mut xt = Tensor::zeros(200, 2);
    for i in 0..200 {
        let y = rng.gaussian(0.6, 0.05);
        let hard = rng.bernoulli(0.4);
        let noise = if hard { rng.gaussian(0.0, 0.8) } else { rng.gaussian(0.0, 0.03) };
        xt.set(i, 0, y + noise);
        xt.set(i, 1, if hard { rng.uniform(3.0, 5.0) } else { rng.uniform(0.0, 0.5) });
    }
    (model, calib, xt, cfg)
}

fn bench_adapt(c: &mut Criterion) {
    let (model, calib, xt, cfg) = setup();
    c.bench_function("tasfar_adapt_200x20epochs", |b| {
        b.iter(|| {
            let mut m = model.clone();
            black_box(adapt(&mut m, &calib, &xt, &Mse, &cfg))
        })
    });
    // The split/map/pseudo stages alone (no fine-tuning).
    let zero_cfg = TasfarConfig { epochs: 0, ..cfg.clone() };
    c.bench_function("tasfar_pseudo_stage_200", |b| {
        b.iter(|| {
            let mut m = model.clone();
            black_box(adapt(&mut m, &calib, &xt, &Mse, &zero_cfg))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_adapt
}
criterion_main!(benches);
