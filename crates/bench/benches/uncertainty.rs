//! Criterion bench of MC-dropout inference (T stochastic passes), the cost
//! TASFAR pays per target batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

fn bench_mc_dropout(c: &mut Criterion) {
    let mut rng = Rng::new(9);
    let mut model = Sequential::new()
        .add(Dense::new(64, 64, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(64, 32, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(32, 1, Init::XavierUniform, &mut rng));
    let x = Tensor::rand_normal(256, 64, 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("mc_dropout_256");
    for &t in &[5usize, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| McDropout::new(t).predict(&mut model, black_box(&x)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_mc_dropout
}
criterion_main!(benches);
