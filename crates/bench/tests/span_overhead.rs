//! Off-state span overhead budget — the debug-profile smoke version of the
//! release-mode 50 ns/op assert in the `kernels` bench binary.
//!
//! An untraced `tasfar_obs::span()` must cost one relaxed atomic load: no
//! clock read, no allocation, no lock. Debug builds skip optimisation, so
//! the budget here is loose (1 µs/op) — it still catches an accidental
//! `Instant::now()` or boxing sneaking onto the off path.

use std::time::Instant;

#[test]
fn span_off_state_is_nanoseconds_scale() {
    // Force the off state regardless of the ambient TASFAR_TRACE setting.
    tasfar_obs::disable();
    for _ in 0..1_000 {
        std::hint::black_box(tasfar_obs::span("noop"));
    }
    let iters = 200_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(tasfar_obs::span("noop"));
    }
    let ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);
    assert!(
        ns < 1_000.0,
        "off-state span cost {ns:.0} ns/op — expected nanoseconds scale"
    );
}
