//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use tasfar_data::Dataset;
use tasfar_nn::prelude::*;

/// Builds and trains a small dropout MLP on a dataset; returns the model.
pub fn train_mlp(source: &Dataset, hidden: usize, epochs: usize, lr: f64, seed: u64) -> Sequential {
    let mut rng = Rng::new(seed);
    let mut model = Sequential::new()
        .add(Dense::new(
            source.input_dim(),
            hidden,
            Init::HeNormal,
            &mut rng,
        ))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(hidden, hidden / 2, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(
            hidden / 2,
            source.output_dim(),
            Init::XavierUniform,
            &mut rng,
        ));
    let mut opt = Adam::new(lr);
    let _ = fit(
        &mut model,
        &mut opt,
        &Mse,
        &source.x,
        &source.y,
        None,
        &TrainConfig {
            epochs,
            batch_size: 32,
            seed,
            ..TrainConfig::default()
        },
    );
    model
}

/// A toy source/target pair with TASFAR-friendly structure: clean inputs
/// reveal the label, "hard" inputs corrupt it, and target labels cluster.
pub struct ToyTask {
    pub source: Dataset,
    pub target_x: tasfar_nn::tensor::Tensor,
    pub target_y: tasfar_nn::tensor::Tensor,
}

/// Builds the toy task with the given target-label cluster center.
pub fn toy_task(seed: u64, cluster: f64) -> ToyTask {
    let mut rng = Rng::new(seed);
    let gen = |n: usize, labels: &mut dyn FnMut(&mut Rng) -> f64, hard_p: f64, rng: &mut Rng| {
        let mut x = Tensor::zeros(n, 2);
        let mut y = Tensor::zeros(n, 1);
        for i in 0..n {
            let yv = labels(rng);
            let hard = rng.bernoulli(hard_p);
            let noise = if hard {
                rng.gaussian(0.0, 0.8)
            } else {
                rng.gaussian(0.0, 0.03)
            };
            x.set(i, 0, yv + noise);
            x.set(
                i,
                1,
                if hard {
                    rng.uniform(3.0, 5.0)
                } else {
                    rng.uniform(0.0, 0.5)
                },
            );
            y.set(i, 0, yv);
        }
        (x, y)
    };
    let (xs, ys) = gen(600, &mut |r: &mut Rng| r.uniform(-1.0, 1.0), 0.05, &mut rng);
    let (xt, yt) = gen(
        400,
        &mut |r: &mut Rng| r.gaussian(cluster, 0.05),
        0.4,
        &mut rng,
    );
    ToyTask {
        source: Dataset::new(xs, ys),
        target_x: xt,
        target_y: yt,
    }
}
