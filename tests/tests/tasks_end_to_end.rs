//! End-to-end integration tests on small instances of the four paper
//! workloads. These exercise the complete stack — simulator → source
//! training → calibration → source-free adaptation → evaluation — at sizes
//! that keep the suite fast.

use integration::train_mlp;
use tasfar_core::prelude::*;
use tasfar_data::crowd::{self, CrowdConfig};
use tasfar_data::housing::{self, HousingConfig};
use tasfar_data::pdr::{self, PdrConfig};
use tasfar_data::taxi::{self, TaxiConfig};
use tasfar_data::{Dataset, Scaler};
use tasfar_nn::prelude::*;

#[test]
fn pdr_end_to_end_small() {
    let config = PdrConfig {
        n_seen: 4,
        n_unseen: 1,
        source_steps_per_user: 150,
        trajectories_per_user: 3,
        steps_per_trajectory: 50,
        ..PdrConfig::default()
    };
    let world = pdr::generate(&config);
    let scaler = Scaler::fit(&world.source.x);
    let source = Dataset::new(scaler.transform(&world.source.x), world.source.y.clone());

    let mut rng = Rng::new(9);
    let t = config.time_len;
    let mut model = Sequential::new()
        .add(TcnBlock::new(pdr::CHANNELS, 8, 3, 1, t, 0.1, &mut rng))
        .add(GlobalAvgPool1d::new(8, t))
        .add(Dense::new(8, 16, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(16, 2, Init::XavierUniform, &mut rng));
    let mut opt = Adam::new(1e-3);
    let _ = fit(
        &mut model,
        &mut opt,
        &Mse,
        &source.x,
        &source.y,
        None,
        &TrainConfig {
            epochs: 25,
            batch_size: 64,
            ..TrainConfig::default()
        },
    );

    let cfg = TasfarConfig {
        grid_cell: 0.1,
        joint_2d: true,
        scenario_tau_rescale: true,
        epochs: 30,
        learning_rate: 5e-4,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("PDR source calibrates");
    assert_eq!(calib.qs.len(), 2, "one Q_s per label dimension");

    let user = &world.unseen_users[0];
    let (adapt_trajs, _) = user.adaptation_test_split(0.8);
    let parts: Vec<Dataset> = adapt_trajs
        .iter()
        .map(|t| Dataset::new(scaler.transform(&t.windows), t.displacements.clone()))
        .collect();
    let adapt_ds = Dataset::concat(&parts.iter().collect::<Vec<_>>());

    let before = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);
    let outcome =
        adapt(&mut model, &calib, &adapt_ds.x, &Mse, &cfg).expect("PDR user batch adapts");
    let after = metrics::step_error(&model.predict(&adapt_ds.x), &adapt_ds.y);

    assert!(matches!(
        outcome.maps,
        tasfar_core::adapt::BuiltMaps::Joint2d(_)
    ));
    // The adaptation must not blow up the model even at this small scale.
    assert!(
        after < before * 1.25,
        "PDR adaptation degraded too much: {before:.4} → {after:.4}"
    );
}

#[test]
fn crowd_end_to_end_small() {
    let world = crowd::generate(&CrowdConfig {
        n_source: 150,
        n_per_scene: 80,
        seed: 23,
    });
    let scaler = Scaler::fit(&world.source.x);
    let source = Dataset::new(scaler.transform(&world.source.x), world.source.y.clone());
    let mut model = train_mlp(&source, 48, 80, 1e-3, 23);

    let cfg = TasfarConfig {
        grid_cell: 5.0,
        joint_2d: false,
        relative_uncertainty: true,
        scenario_tau_rescale: true,
        epochs: 40,
        learning_rate: 1e-3,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("the source set calibrates");

    // Adapt to the sparsest scene — the largest gap from the dense source.
    let scene = &world.scenes[0];
    let data = Dataset::new(scaler.transform(&scene.data.x), scene.data.y.clone());
    let mut rng = Rng::new(1);
    let (adapt_ds, test_ds) = data.split_fraction(0.8, &mut rng);

    let before = metrics::mae(&model.predict(&test_ds.x), &test_ds.y);
    let outcome = adapt(&mut model, &calib, &adapt_ds.x, &Mse, &cfg).expect("crowd scene adapts");
    let after = metrics::mae(&model.predict(&test_ds.x), &test_ds.y);

    assert!(
        outcome.split.uncertain_ratio() > 0.05,
        "the shifted scene should show uncertain data"
    );
    assert!(
        after < before,
        "crowd adaptation should reduce test MAE: {before:.2} → {after:.2}"
    );
}

#[test]
fn housing_end_to_end_small() {
    let world = housing::generate(&HousingConfig {
        n_districts: 2500,
        ..HousingConfig::default()
    });
    let scaler = Scaler::fit(&world.source.x);
    let source = Dataset::new(scaler.transform(&world.source.x), world.source.y.clone());
    let target = Dataset::new(scaler.transform(&world.target.x), world.target.y.clone());
    let mut model = train_mlp(&source, 48, 200, 1e-3, 31);

    let cfg = TasfarConfig {
        grid_cell: 0.1,
        joint_2d: false,
        relative_uncertainty: true,
        epochs: 50,
        learning_rate: 5e-4,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("the source set calibrates");
    let mut rng = Rng::new(3);
    let (adapt_ds, test_ds) = target.split_fraction(0.8, &mut rng);

    let before = metrics::mse(&model.predict(&test_ds.x), &test_ds.y);
    adapt(&mut model, &calib, &adapt_ds.x, &Mse, &cfg).expect("housing target adapts");
    let after = metrics::mse(&model.predict(&test_ds.x), &test_ds.y);

    assert!(
        after < before,
        "housing adaptation should reduce coastal MSE: {before:.4} → {after:.4}"
    );
}

#[test]
fn taxi_end_to_end_small() {
    let world = taxi::generate(&TaxiConfig {
        n_trips: 4000,
        ..TaxiConfig::default()
    });
    let scaler = Scaler::fit(&world.source.x);
    let source = Dataset::new(scaler.transform(&world.source.x), world.source.y.clone());
    let target = Dataset::new(scaler.transform(&world.target.x), world.target.y.clone());
    let mut model = train_mlp(&source, 48, 60, 1e-3, 47);

    let cfg = TasfarConfig {
        grid_cell: 2.0,
        joint_2d: false,
        relative_uncertainty: true,
        scenario_tau_rescale: true,
        epochs: 50,
        learning_rate: 5e-4,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &source, &cfg).expect("the source set calibrates");
    let mut rng = Rng::new(4);
    let (adapt_ds, test_ds) = target.split_fraction(0.8, &mut rng);

    let before = metrics::rmsle(&model.predict(&test_ds.x), &test_ds.y);
    adapt(&mut model, &calib, &adapt_ds.x, &Mse, &cfg).expect("taxi target adapts");
    let after = metrics::rmsle(&model.predict(&test_ds.x), &test_ds.y);

    assert!(
        after < before,
        "taxi adaptation should reduce Manhattan RMSLE: {before:.4} → {after:.4}"
    );
}
