//! Property-based tests of the core data structures and algorithm
//! invariants, across randomised inputs.
//!
//! Randomised inputs come from hand-rolled seed loops over the in-tree
//! [`tasfar_nn::rng::Rng`] (the build environment has no crates.io access,
//! so `proptest` is not available). Each case derives every input from a
//! case-indexed PRNG stream, so a failure reproduces exactly from the case
//! number printed in the assertion message.

use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;
use tasfar_nn::rng::Rng as TRng;

const CASES: u64 = 64;

/// A vector of `len ∈ [lo, hi)` uniform draws from `[a, b)`.
fn uniform_vec(g: &mut TRng, lo: usize, hi: usize, a: f64, b: f64) -> Vec<f64> {
    let len = lo + g.below(hi - lo);
    (0..len).map(|_| g.uniform(a, b)).collect()
}

/// Density maps built from labels always carry mass in [0, 1], with exactly
/// 1 on a grid that covers every label.
#[test]
fn density_map_mass_is_normalised() {
    for case in 0..CASES {
        let mut g = TRng::new(0xDE51 ^ case);
        let labels = uniform_vec(&mut g, 1, 200, -50.0, 50.0);
        let cell = g.uniform(0.1, 5.0);
        let spec = GridSpec::covering(&labels, cell, 1);
        let map = DensityMap1d::from_labels(&labels, spec);
        assert!((map.total_mass() - 1.0).abs() < 1e-9, "case {case}");
        for i in 0..map.spec.bins {
            assert!(
                map.mass(i) >= 0.0 && map.mass(i) <= 1.0 + 1e-12,
                "case {case}"
            );
        }
    }
}

/// Estimated maps conserve (almost all) probability mass when the grid is
/// wide enough for the spreads.
#[test]
fn estimated_map_mass_conserved() {
    for case in 0..CASES {
        let mut g = TRng::new(0xE571 ^ case);
        let preds = uniform_vec(&mut g, 1, 50, -5.0, 5.0);
        let sigma = g.uniform(0.05, 1.0);
        let sigmas = vec![sigma; preds.len()];
        let spec = GridSpec::from_range(-25.0, 25.0, 0.25);
        let map = DensityMap1d::estimate(&preds, &sigmas, spec, ErrorModel::Gaussian);
        assert!(
            (map.total_mass() - 1.0).abs() < 1e-6,
            "case {case}: mass {}",
            map.total_mass()
        );
    }
}

/// The pseudo-label always lies inside the ±3σ locality window around the
/// prediction (it interpolates cell centres within that window), or equals
/// the prediction exactly on fallback.
#[test]
fn pseudo_label_stays_in_the_locality_window() {
    for case in 0..CASES {
        let mut g = TRng::new(0x95E0 ^ case);
        let labels = uniform_vec(&mut g, 20, 200, -10.0, 10.0);
        let pred = g.uniform(-12.0, 12.0);
        let sigma = g.uniform(0.1, 2.0);
        let u = g.uniform(0.05, 2.0);
        let spec = GridSpec::covering(&labels, 0.25, 2);
        let map = DensityMap1d::from_labels(&labels, spec);
        let generator = PseudoLabelGenerator1d::new(&map, 0.1, ErrorModel::Gaussian);
        let p = generator.generate(pred, sigma, u);
        if p.informative {
            // Window half-width: 3σ plus half a cell (centres within 3σ).
            assert!(
                (p.value[0] - pred).abs() < 3.0 * sigma + 0.25 / 2.0 + 1e-9,
                "case {case}"
            );
            assert!(
                p.credibility >= 0.0 && p.credibility.is_finite(),
                "case {case}"
            );
        } else {
            assert_eq!(p.value[0], pred, "case {case}");
            assert_eq!(p.credibility, 0.0, "case {case}");
        }
    }
}

/// Credibility scales exactly linearly with the uncertainty (Eq. 18/21) at
/// a fixed prediction and spread.
#[test]
fn credibility_is_linear_in_uncertainty() {
    for case in 0..CASES {
        let mut g = TRng::new(0xC4ED ^ case);
        let labels = uniform_vec(&mut g, 50, 200, -5.0, 5.0);
        let pred = g.uniform(-4.0, 4.0);
        let sigma = g.uniform(0.2, 1.0);
        let spec = GridSpec::covering(&labels, 0.2, 2);
        let map = DensityMap1d::from_labels(&labels, spec);
        let generator = PseudoLabelGenerator1d::new(&map, 0.1, ErrorModel::Gaussian);
        let a = generator.generate(pred, sigma, 0.2);
        let b = generator.generate(pred, sigma, 0.4);
        if a.informative && b.informative && a.credibility > 1e-12 {
            assert!(
                (b.credibility / a.credibility - 2.0).abs() < 1e-9,
                "case {case}"
            );
        }
    }
}

/// The confidence classifier partitions every batch exactly.
#[test]
fn confidence_split_partitions() {
    for case in 0..CASES {
        let mut g = TRng::new(0x5B17 ^ case);
        let us = uniform_vec(&mut g, 1, 300, 0.001, 10.0);
        let tau = g.uniform(0.01, 5.0);
        let c = ConfidenceClassifier::from_tau(tau, 0.9);
        let s = c.split(&us);
        assert_eq!(
            s.confident.len() + s.uncertain.len(),
            us.len(),
            "case {case}"
        );
        for &i in &s.confident {
            assert!(us[i] <= tau, "case {case}");
        }
        for &i in &s.uncertain {
            assert!(us[i] > tau, "case {case}");
        }
    }
}

/// Q_s fits always produce non-negative, finite spreads with a non-negative
/// slope.
#[test]
fn qs_fit_is_well_behaved() {
    for case in 0..CASES {
        let mut g = TRng::new(0x09F1 ^ case);
        let len = 10 + g.below(290);
        let us: Vec<f64> = (0..len).map(|_| g.uniform(0.01, 2.0)).collect();
        let es: Vec<f64> = (0..len).map(|_| g.uniform(-3.0, 3.0)).collect();
        let q = 1 + g.below(49);
        let fit = QsCalibration::fit(&us, &es, q);
        assert!(fit.a1 >= 0.0, "case {case}");
        for &u in &us {
            let s = fit.sigma(u);
            assert!(s > 0.0 && s.is_finite(), "case {case}");
        }
    }
}

/// Error-model CDFs are valid distribution functions for any σ.
#[test]
fn error_model_cdfs_are_valid() {
    for case in 0..CASES {
        let mut g = TRng::new(0xCDF5 ^ case);
        let mean = g.uniform(-10.0, 10.0);
        let std = g.uniform(0.01, 10.0);
        let x1 = g.uniform(-40.0, 40.0);
        let x2 = g.uniform(-40.0, 40.0);
        for m in [
            ErrorModel::Gaussian,
            ErrorModel::Laplace,
            ErrorModel::Uniform,
        ] {
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            let mass = m.interval_mass(lo, hi, mean, std);
            assert!((0.0..=1.0 + 1e-12).contains(&mass), "case {case}: {m:?}");
            assert!(
                m.cdf(lo, mean, std) <= m.cdf(hi, mean, std) + 1e-12,
                "case {case}: {m:?}"
            );
        }
    }
}

/// Training with uniform weights equals unweighted training exactly.
#[test]
fn uniform_weights_match_unweighted_training() {
    // Fewer cases: each runs a full (small) training job twice.
    for case in 0..8u64 {
        let mut g = TRng::new(0x3217 ^ case);
        let seed = g.below(1000) as u64;
        let w = g.uniform(0.1, 10.0);
        let mut rng = TRng::new(seed);
        let x = Tensor::rand_uniform(64, 2, -1.0, 1.0, &mut rng);
        let y = Tensor::from_fn(64, 1, |r, _| x.get(r, 0) - x.get(r, 1));
        let run = |weights: Option<Vec<f64>>| {
            let mut rng2 = TRng::new(seed ^ 0xabc);
            let mut model = Sequential::new()
                .add(Dense::new(2, 8, Init::HeNormal, &mut rng2))
                .add(Relu::new())
                .add(Dense::new(8, 1, Init::XavierUniform, &mut rng2));
            let mut opt = Adam::new(1e-2);
            let _ = fit(
                &mut model,
                &mut opt,
                &Mse,
                &x,
                &y,
                weights.as_deref(),
                &TrainConfig {
                    epochs: 5,
                    batch_size: 16,
                    seed,
                    ..TrainConfig::default()
                },
            );
            model.predict(&x).into_vec()
        };
        let unweighted = run(None);
        let weighted = run(Some(vec![w; 64]));
        for (a, b) in unweighted.iter().zip(&weighted) {
            assert!((a - b).abs() < 1e-9, "case {case}");
        }
    }
}

/// Metrics are invariant under row permutation.
#[test]
fn metrics_are_permutation_invariant() {
    for case in 0..CASES {
        let mut rng = TRng::new(0x9E72 ^ case);
        let pred = Tensor::rand_normal(32, 2, 0.0, 1.0, &mut rng);
        let target = Tensor::rand_normal(32, 2, 0.0, 1.0, &mut rng);
        let perm = rng.permutation(32);
        let pred_p = pred.select_rows(&perm);
        let target_p = target.select_rows(&perm);
        assert!(
            (metrics::mse(&pred, &target) - metrics::mse(&pred_p, &target_p)).abs() < 1e-12,
            "case {case}"
        );
        assert!(
            (metrics::step_error(&pred, &target) - metrics::step_error(&pred_p, &target_p)).abs()
                < 1e-12,
            "case {case}"
        );
        assert!(
            (metrics::rte(&pred, &target) - metrics::rte(&pred_p, &target_p)).abs() < 1e-9,
            "case {case}"
        );
    }
}
