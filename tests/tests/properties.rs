//! Property-based tests (proptest) of the core data structures and
//! algorithm invariants, across randomised inputs.

use proptest::prelude::*;
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;
use tasfar_nn::rng::Rng as TRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Density maps built from labels always carry mass in [0, 1], with
    /// exactly 1 on a grid that covers every label.
    #[test]
    fn density_map_mass_is_normalised(
        labels in prop::collection::vec(-50.0f64..50.0, 1..200),
        cell in 0.1f64..5.0,
    ) {
        let spec = GridSpec::covering(&labels, cell, 1);
        let map = DensityMap1d::from_labels(&labels, spec);
        prop_assert!((map.total_mass() - 1.0).abs() < 1e-9);
        for i in 0..map.spec.bins {
            prop_assert!(map.mass(i) >= 0.0 && map.mass(i) <= 1.0 + 1e-12);
        }
    }

    /// Estimated maps conserve (almost all) probability mass when the grid
    /// is wide enough for the spreads.
    #[test]
    fn estimated_map_mass_conserved(
        preds in prop::collection::vec(-5.0f64..5.0, 1..50),
        sigma in 0.05f64..1.0,
    ) {
        let sigmas = vec![sigma; preds.len()];
        let spec = GridSpec::from_range(-25.0, 25.0, 0.25);
        let map = DensityMap1d::estimate(&preds, &sigmas, spec, ErrorModel::Gaussian);
        prop_assert!((map.total_mass() - 1.0).abs() < 1e-6, "mass {}", map.total_mass());
    }

    /// The pseudo-label always lies inside the ±3σ locality window around
    /// the prediction (it interpolates cell centres within that window), or
    /// equals the prediction exactly on fallback.
    #[test]
    fn pseudo_label_stays_in_the_locality_window(
        labels in prop::collection::vec(-10.0f64..10.0, 20..200),
        pred in -12.0f64..12.0,
        sigma in 0.1f64..2.0,
        u in 0.05f64..2.0,
    ) {
        let spec = GridSpec::covering(&labels, 0.25, 2);
        let map = DensityMap1d::from_labels(&labels, spec);
        let generator = PseudoLabelGenerator1d::new(&map, 0.1, ErrorModel::Gaussian);
        let p = generator.generate(pred, sigma, u);
        if p.informative {
            // Window half-width: 3σ plus half a cell (centres within 3σ).
            prop_assert!((p.value[0] - pred).abs() < 3.0 * sigma + 0.25 / 2.0 + 1e-9);
            prop_assert!(p.credibility >= 0.0 && p.credibility.is_finite());
        } else {
            prop_assert_eq!(p.value[0], pred);
            prop_assert_eq!(p.credibility, 0.0);
        }
    }

    /// Credibility scales exactly linearly with the uncertainty (Eq. 18/21)
    /// at a fixed prediction and spread.
    #[test]
    fn credibility_is_linear_in_uncertainty(
        labels in prop::collection::vec(-5.0f64..5.0, 50..200),
        pred in -4.0f64..4.0,
        sigma in 0.2f64..1.0,
    ) {
        let spec = GridSpec::covering(&labels, 0.2, 2);
        let map = DensityMap1d::from_labels(&labels, spec);
        let generator = PseudoLabelGenerator1d::new(&map, 0.1, ErrorModel::Gaussian);
        let a = generator.generate(pred, sigma, 0.2);
        let b = generator.generate(pred, sigma, 0.4);
        if a.informative && b.informative && a.credibility > 1e-12 {
            prop_assert!((b.credibility / a.credibility - 2.0).abs() < 1e-9);
        }
    }

    /// The confidence classifier partitions every batch exactly.
    #[test]
    fn confidence_split_partitions(
        us in prop::collection::vec(0.001f64..10.0, 1..300),
        tau in 0.01f64..5.0,
    ) {
        let c = ConfidenceClassifier::from_tau(tau, 0.9);
        let s = c.split(&us);
        prop_assert_eq!(s.confident.len() + s.uncertain.len(), us.len());
        for &i in &s.confident {
            prop_assert!(us[i] <= tau);
        }
        for &i in &s.uncertain {
            prop_assert!(us[i] > tau);
        }
    }

    /// Q_s fits always produce non-negative, finite spreads with a
    /// non-negative slope.
    #[test]
    fn qs_fit_is_well_behaved(
        pairs in prop::collection::vec((0.01f64..2.0, -3.0f64..3.0), 10..300),
        q in 1usize..50,
    ) {
        let us: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let es: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let fit = QsCalibration::fit(&us, &es, q);
        prop_assert!(fit.a1 >= 0.0);
        for &u in &us {
            let s = fit.sigma(u);
            prop_assert!(s > 0.0 && s.is_finite());
        }
    }

    /// Error-model CDFs are valid distribution functions for any σ.
    #[test]
    fn error_model_cdfs_are_valid(
        mean in -10.0f64..10.0,
        std in 0.01f64..10.0,
        x1 in -40.0f64..40.0,
        x2 in -40.0f64..40.0,
    ) {
        for m in [ErrorModel::Gaussian, ErrorModel::Laplace, ErrorModel::Uniform] {
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            let mass = m.interval_mass(lo, hi, mean, std);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&mass));
            prop_assert!(m.cdf(lo, mean, std) <= m.cdf(hi, mean, std) + 1e-12);
        }
    }

    /// Training with uniform weights equals unweighted training exactly.
    #[test]
    fn uniform_weights_match_unweighted_training(
        seed in 0u64..1000,
        w in 0.1f64..10.0,
    ) {
        let mut rng = TRng::new(seed);
        let x = Tensor::rand_uniform(64, 2, -1.0, 1.0, &mut rng);
        let y = Tensor::from_fn(64, 1, |r, _| x.get(r, 0) - x.get(r, 1));
        let run = |weights: Option<Vec<f64>>| {
            let mut rng2 = TRng::new(seed ^ 0xabc);
            let mut model = Sequential::new()
                .add(Dense::new(2, 8, Init::HeNormal, &mut rng2))
                .add(Relu::new())
                .add(Dense::new(8, 1, Init::XavierUniform, &mut rng2));
            let mut opt = Adam::new(1e-2);
            let _ = fit(
                &mut model,
                &mut opt,
                &Mse,
                &x,
                &y,
                weights.as_deref(),
                &TrainConfig { epochs: 5, batch_size: 16, seed, ..TrainConfig::default() },
            );
            model.predict(&x).into_vec()
        };
        let unweighted = run(None);
        let weighted = run(Some(vec![w; 64]));
        for (a, b) in unweighted.iter().zip(&weighted) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Metrics are invariant under row permutation.
    #[test]
    fn metrics_are_permutation_invariant(seed in 0u64..1000) {
        let mut rng = TRng::new(seed);
        let pred = Tensor::rand_normal(32, 2, 0.0, 1.0, &mut rng);
        let target = Tensor::rand_normal(32, 2, 0.0, 1.0, &mut rng);
        let perm = rng.permutation(32);
        let pred_p = pred.select_rows(&perm);
        let target_p = target.select_rows(&perm);
        prop_assert!((metrics::mse(&pred, &target) - metrics::mse(&pred_p, &target_p)).abs() < 1e-12);
        prop_assert!((metrics::step_error(&pred, &target) - metrics::step_error(&pred_p, &target_p)).abs() < 1e-12);
        prop_assert!((metrics::rte(&pred, &target) - metrics::rte(&pred_p, &target_p)).abs() < 1e-9);
    }
}
