//! Deployment-bundle round trips: the model + calibration artefacts a
//! TASFAR deployment ships to the target device must survive serialization
//! with bit-identical behaviour.

use integration::toy_task;
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;
use tasfar_nn::spec::{LayerSpec, ModelSpec, SavedModel};

fn toy_spec() -> ModelSpec {
    ModelSpec::new(vec![
        LayerSpec::Dense {
            in_dim: 2,
            out_dim: 32,
        },
        LayerSpec::Relu,
        LayerSpec::Dropout { p: 0.2 },
        LayerSpec::Dense {
            in_dim: 32,
            out_dim: 1,
        },
    ])
}

#[test]
fn full_deployment_bundle_roundtrip() {
    let toy = toy_task(1, 0.6);
    let spec = toy_spec();
    let mut rng = Rng::new(1);
    let mut model = spec.build(&mut rng);
    let mut opt = Adam::new(5e-3);
    let _ = fit(
        &mut model,
        &mut opt,
        &Mse,
        &toy.source.x,
        &toy.source.y,
        None,
        &TrainConfig {
            epochs: 120,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    let cfg = TasfarConfig {
        grid_cell: 0.05,
        epochs: 40,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &toy.source, &cfg).expect("toy source calibrates");

    // ---- serialize the whole bundle: model + calibration + config -------
    let model_json = SavedModel::capture(&spec, &mut model).to_json();
    let calib_json = ToJson::to_json(&calib);
    let cfg_json = ToJson::to_json(&cfg);

    // ---- "on the target device": restore and adapt ----------------------
    let mut restored = SavedModel::from_json(&model_json)
        .unwrap()
        .restore(&mut Rng::new(777));
    let calib2 = SourceCalibration::from_json(&calib_json).unwrap();
    let cfg2 = TasfarConfig::from_json(&cfg_json).unwrap();

    // Identical inference before adaptation.
    assert_eq!(
        model.predict(&toy.target_x),
        restored.predict(&toy.target_x)
    );

    // Identical calibration artefacts.
    assert_eq!(calib.classifier.tau, calib2.classifier.tau);
    assert_eq!(calib.qs[0].a0, calib2.qs[0].a0);
    assert_eq!(calib.qs[0].a1, calib2.qs[0].a1);
    assert_eq!(calib.median_uncertainty, calib2.median_uncertainty);

    // The adaptation itself is NOT expected to be bit-identical across the
    // two models: dropout layers carry fresh PRNG state after restore, and
    // MC-dropout consumes it. What must hold is that the restored bundle
    // adapts *successfully*.
    let before = metrics::mse(&restored.predict(&toy.target_x), &toy.target_y);
    adapt(&mut restored, &calib2, &toy.target_x, &Mse, &cfg2).expect("the restored bundle adapts");
    let after = metrics::mse(&restored.predict(&toy.target_x), &toy.target_y);
    assert!(
        after < before,
        "restored bundle should adapt: {before:.4} → {after:.4}"
    );
}

#[test]
fn tasfar_config_json_roundtrip_preserves_every_field() {
    let cfg = TasfarConfig {
        eta: 0.85,
        mc_samples: 10,
        relative_uncertainty: true,
        scenario_tau_rescale: true,
        segments: 17,
        grid_cell: 0.42,
        error_model: ErrorModel::Laplace,
        use_credibility: false,
        replay_confident: false,
        joint_2d: true,
        learning_rate: 3e-4,
        epochs: 77,
        batch_size: 48,
        early_stop: None,
        finetune_dropout: true,
        seed: 99,
        min_confident: 3,
    };
    let json = ToJson::to_json(&cfg);
    let back = TasfarConfig::from_json(&json).unwrap();
    assert_eq!(back.eta, cfg.eta);
    assert_eq!(back.mc_samples, cfg.mc_samples);
    assert_eq!(back.relative_uncertainty, cfg.relative_uncertainty);
    assert_eq!(back.scenario_tau_rescale, cfg.scenario_tau_rescale);
    assert_eq!(back.segments, cfg.segments);
    assert_eq!(back.grid_cell, cfg.grid_cell);
    assert_eq!(back.error_model, cfg.error_model);
    assert_eq!(back.use_credibility, cfg.use_credibility);
    assert_eq!(back.replay_confident, cfg.replay_confident);
    assert_eq!(back.joint_2d, cfg.joint_2d);
    assert_eq!(back.learning_rate, cfg.learning_rate);
    assert_eq!(back.epochs, cfg.epochs);
    assert_eq!(back.batch_size, cfg.batch_size);
    assert!(back.early_stop.is_none());
    assert_eq!(back.finetune_dropout, cfg.finetune_dropout);
    assert_eq!(back.seed, cfg.seed);
    assert_eq!(back.min_confident, cfg.min_confident);
}

#[test]
fn qs_segments_survive_serialization() {
    let mut rng = Rng::new(5);
    let us: Vec<f64> = (0..500).map(|_| rng.uniform(0.1, 1.0)).collect();
    let es: Vec<f64> = us.iter().map(|&u| rng.gaussian(0.0, 0.2 + u)).collect();
    let qs = QsCalibration::fit(&us, &es, 20);
    let json = ToJson::to_json(&qs);
    let back = QsCalibration::from_json(&json).unwrap();
    assert_eq!(back.segments.len(), qs.segments.len());
    for u in [0.1, 0.5, 0.9, 2.0] {
        assert_eq!(back.sigma(u), qs.sigma(u));
    }
}
