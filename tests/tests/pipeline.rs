//! Cross-crate integration tests of the full TASFAR pipeline and its
//! interaction with the baseline schemes, on the toy task.

use integration::{toy_task, train_mlp};
use tasfar_baselines::{
    record_source_stats, AdvAdapter, AugfreeAdapter, BaselineConfig, DatafreeAdapter,
    DomainAdapter, MmdAdapter,
};
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

fn toy_config() -> TasfarConfig {
    TasfarConfig {
        grid_cell: 0.05,
        epochs: 60,
        learning_rate: 1e-3,
        early_stop: None,
        ..TasfarConfig::default()
    }
}

#[test]
fn tasfar_improves_the_toy_target() {
    let toy = toy_task(1, 0.6);
    let mut model = train_mlp(&toy.source, 32, 120, 5e-3, 1);
    let cfg = toy_config();
    let calib = calibrate_on_source(&mut model, &toy.source, &cfg).expect("toy source calibrates");
    let before = metrics::mse(&model.predict(&toy.target_x), &toy.target_y);
    adapt(&mut model, &calib, &toy.target_x, &Mse, &cfg).expect("toy target adapts");
    let after = metrics::mse(&model.predict(&toy.target_x), &toy.target_y);
    assert!(
        after < before,
        "TASFAR should reduce target MSE: {before:.4} → {after:.4}"
    );
}

#[test]
fn tasfar_outcome_is_internally_consistent() {
    let toy = toy_task(2, -0.5);
    let mut model = train_mlp(&toy.source, 32, 120, 5e-3, 2);
    let cfg = toy_config();
    let calib = calibrate_on_source(&mut model, &toy.source, &cfg).expect("toy source calibrates");
    let outcome = adapt(&mut model, &calib, &toy.target_x, &Mse, &cfg).expect("toy target adapts");

    // The partition covers the batch exactly once.
    let mut all: Vec<usize> = outcome
        .split
        .confident
        .iter()
        .chain(&outcome.split.uncertain)
        .copied()
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..toy.target_x.rows()).collect::<Vec<_>>());

    // One pseudo-label per uncertain sample; credibilities non-negative.
    assert_eq!(outcome.pseudo.len(), outcome.split.uncertain.len());
    for p in &outcome.pseudo {
        assert!(p.credibility >= 0.0 && p.credibility.is_finite());
        assert_eq!(p.value.len(), 1);
        assert!(p.value[0].is_finite());
    }

    // The density map carries probability mass.
    match &outcome.maps {
        tasfar_core::adapt::BuiltMaps::PerDim(maps) => {
            assert_eq!(maps.len(), 1);
            let m = &maps[0];
            assert!(m.total_mass() > 0.5 && m.total_mass() <= 1.0 + 1e-9);
        }
        tasfar_core::adapt::BuiltMaps::Joint2d(_) => panic!("1-D task must use per-dim maps"),
    }
}

#[test]
fn pseudo_labels_pull_toward_the_target_cluster() {
    let toy = toy_task(3, 0.7);
    let mut model = train_mlp(&toy.source, 32, 120, 5e-3, 3);
    let cfg = toy_config();
    let calib = calibrate_on_source(&mut model, &toy.source, &cfg).expect("toy source calibrates");
    let outcome =
        adapt(&mut model.clone(), &calib, &toy.target_x, &Mse, &cfg).expect("toy target adapts");
    // Informative pseudo-labels should be closer to 0.7 than the raw
    // predictions are, on average.
    let mut d_pred = 0.0;
    let mut d_pseudo = 0.0;
    let mut n = 0.0;
    for (row, &i) in outcome.split.uncertain.iter().enumerate() {
        if !outcome.pseudo[row].informative {
            continue;
        }
        d_pred += (outcome.mc.point.get(i, 0) - 0.7).abs();
        d_pseudo += (outcome.pseudo[row].value[0] - 0.7).abs();
        n += 1.0;
    }
    assert!(n > 5.0, "expected informative pseudo-labels");
    assert!(
        d_pseudo / n < d_pred / n,
        "pseudo-labels should approach the cluster: {:.4} vs {:.4}",
        d_pseudo / n,
        d_pred / n
    );
}

#[test]
fn all_baselines_run_and_preserve_sanity_on_the_toy_task() {
    let toy = toy_task(4, 0.5);
    let model = train_mlp(&toy.source, 32, 120, 5e-3, 4);
    let cfg = BaselineConfig {
        split_at: 3,
        epochs: 15,
        learning_rate: 5e-4,
        ..BaselineConfig::default()
    };
    let mut source_model = model.clone();
    let before = {
        let mut m = model.clone();
        metrics::mse(&m.predict(&toy.target_x), &toy.target_y)
    };
    let adapters: Vec<Box<dyn DomainAdapter<Sequential>>> = vec![
        Box::new(MmdAdapter::new(cfg.clone(), 1.0)),
        Box::new(AdvAdapter::new(cfg.clone(), 0.3, 16)),
        Box::new(AugfreeAdapter::new(cfg.clone(), 0.3)),
        Box::new(DatafreeAdapter::new(
            cfg.clone(),
            record_source_stats(&mut source_model, &toy.source, cfg.split_at, 16),
        )),
    ];
    for adapter in adapters {
        let mut m = model.clone();
        let source = if adapter.requires_source() {
            Some(&toy.source)
        } else {
            None
        };
        adapter
            .adapt(&mut m, source, &toy.target_x, &Mse)
            .unwrap_or_else(|e| panic!("{}: adaptation failed: {e}", adapter.name()));
        let after = metrics::mse(&m.predict(&toy.target_x), &toy.target_y);
        assert!(
            after.is_finite() && after < before * 3.0,
            "{}: target MSE exploded {before:.4} → {after:.4}",
            adapter.name()
        );
    }
}

#[test]
fn full_pipeline_is_deterministic_across_runs() {
    let run = || {
        let toy = toy_task(5, 0.4);
        let mut model = train_mlp(&toy.source, 16, 60, 5e-3, 5);
        let cfg = toy_config();
        let calib =
            calibrate_on_source(&mut model, &toy.source, &cfg).expect("toy source calibrates");
        adapt(&mut model, &calib, &toy.target_x, &Mse, &cfg).expect("toy target adapts");
        model.predict(&toy.target_x).as_slice().to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn scenario_tau_rescale_handles_uniformly_shifted_uncertainty() {
    // A target whose uncertainties are uniformly doubled (e.g. label
    // magnitudes) should not be wholesale-classified uncertain when the
    // rescaling is enabled.
    let toy = toy_task(6, 0.6);
    let mut model = train_mlp(&toy.source, 32, 120, 5e-3, 6);
    let cfg = TasfarConfig {
        scenario_tau_rescale: true,
        ..toy_config()
    };
    let calib = calibrate_on_source(&mut model, &toy.source, &cfg).expect("toy source calibrates");
    let mc = McDropout::new(cfg.mc_samples).predict(&mut model, &toy.target_x);
    let doubled: Vec<f64> = mc.uncertainty.iter().map(|u| u * 2.0).collect();
    let classifier = tasfar_core::adapt::scenario_classifier(&calib, &cfg, &doubled);
    let split = classifier.split(&doubled);
    assert!(
        split.uncertain_ratio() < 0.7,
        "rescaled split flagged {:.0}% uncertain",
        100.0 * split.uncertain_ratio()
    );
    // Without rescaling, the doubled uncertainties swamp τ.
    let plain = calib.classifier.split(&doubled);
    assert!(plain.uncertain_ratio() > split.uncertain_ratio());
}
