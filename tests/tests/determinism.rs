//! Cross-thread-count determinism of the TASFAR pipeline stages.
//!
//! Companion to `crates/nn/tests/determinism.rs`: the same bit-identity
//! contract, checked at the algorithm level — MC-dropout uncertainty
//! estimation and the KDE density maps must produce identical raw `f64`
//! bits whether the parallel runtime uses 1 thread, 4 threads, or the
//! machine default.

use tasfar_core::prelude::*;
use tasfar_nn::parallel::{reset_threads, set_threads};
use tasfar_nn::prelude::*;

/// Runs `f` at a pinned thread count, then restores the default.
fn at_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    set_threads(n);
    let out = f();
    reset_threads();
    out
}

fn bits(t: &Tensor) -> Vec<u64> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn slice_bits(s: &[f64]) -> Vec<u64> {
    s.iter().map(|v| v.to_bits()).collect()
}

/// MC-dropout prediction (T stochastic passes with per-pass RNG streams,
/// fanned out over the pool) is bit-identical at any thread count.
#[test]
fn mc_dropout_predict_is_thread_count_invariant() {
    let mut rng = Rng::new(0x3C0D);
    let proto = Sequential::new()
        .add(Dense::new(4, 32, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(32, 32, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(32, 2, Init::XavierUniform, &mut rng));
    let x = Tensor::rand_normal(37, 4, 0.0, 1.0, &mut rng);

    let run = || {
        let mut model = proto.clone();
        let p = McDropout::new(20).predict(&mut model, &x);
        (bits(&p.point), bits(&p.std), slice_bits(&p.uncertainty))
    };
    let one = at_threads(1, run);
    let four = at_threads(4, run);
    let default = run();
    assert_eq!(one, four, "1 vs 4 threads");
    assert_eq!(one, default, "1 vs default threads");
}

/// 1D KDE estimation (per-sample partial maps combined in chunk order) is
/// bit-identical at any thread count, including a sample count that does
/// not divide evenly into chunks.
#[test]
fn density_map_1d_estimate_is_thread_count_invariant() {
    let mut rng = Rng::new(0x1DE5);
    let preds: Vec<f64> = (0..203).map(|_| rng.gaussian(0.0, 3.0)).collect();
    let sigmas: Vec<f64> = (0..203).map(|_| rng.uniform(0.05, 0.8)).collect();

    for model in [
        ErrorModel::Gaussian,
        ErrorModel::Laplace,
        ErrorModel::Uniform,
    ] {
        let run = || {
            let spec = GridSpec::from_range(-12.0, 12.0, 0.1);
            slice_bits(DensityMap1d::estimate(&preds, &sigmas, spec, model).masses())
        };
        let one = at_threads(1, run);
        let four = at_threads(4, run);
        let default = run();
        assert_eq!(one, four, "{model:?}: 1 vs 4 threads");
        assert_eq!(one, default, "{model:?}: 1 vs default threads");
    }
}

/// 2D KDE estimation is bit-identical at any thread count.
#[test]
fn density_map_2d_estimate_is_thread_count_invariant() {
    let mut rng = Rng::new(0x2DE5);
    let preds = Tensor::rand_normal(97, 2, 0.0, 2.0, &mut rng);
    let sigmas = Tensor::rand_uniform(97, 2, 0.1, 0.6, &mut rng);

    let run = || {
        let xspec = GridSpec::from_range(-8.0, 8.0, 0.2);
        let yspec = GridSpec::from_range(-8.0, 8.0, 0.2);
        slice_bits(
            DensityMap2d::estimate(&preds, &sigmas, xspec, yspec, ErrorModel::Gaussian).masses(),
        )
    };
    let one = at_threads(1, run);
    let four = at_threads(4, run);
    let default = run();
    assert_eq!(one, four, "1 vs 4 threads");
    assert_eq!(one, default, "1 vs default threads");
}
