//! Failure-injection and edge-case tests: degenerate configurations,
//! adversarial batch compositions, and boundary geometries across the
//! cross-crate surface.

use integration::{toy_task, train_mlp};
use tasfar_core::prelude::*;
use tasfar_nn::prelude::*;

fn calibrated_toy() -> (
    Sequential,
    SourceCalibration,
    TasfarConfig,
    tasfar_nn::tensor::Tensor,
) {
    let toy = toy_task(9, 0.5);
    let mut model = train_mlp(&toy.source, 24, 80, 5e-3, 9);
    let cfg = TasfarConfig {
        grid_cell: 0.05,
        epochs: 10,
        early_stop: None,
        ..TasfarConfig::default()
    };
    let calib = calibrate_on_source(&mut model, &toy.source, &cfg).expect("toy source calibrates");
    (model, calib, cfg, toy.target_x)
}

#[test]
fn adapt_on_a_tiny_batch_is_safe() {
    let (model, calib, cfg, target_x) = calibrated_toy();
    for n in [1usize, 2, 3] {
        let mut m = model.clone();
        let rows: Vec<usize> = (0..n).collect();
        let xb = target_x.select_rows(&rows);
        // Tiny batches usually degenerate to all-confident or all-uncertain;
        // either way the pipeline must not panic: it reports a typed,
        // recoverable error (or produces finite pseudo-labels).
        match adapt(&mut m, &calib, &xb, &Mse, &cfg) {
            Ok(outcome) => {
                for p in &outcome.pseudo {
                    assert!(p.value[0].is_finite());
                }
            }
            Err(err) => assert!(err.recoverable(), "unexpected fatal error: {err}"),
        }
        assert!(m.predict(&xb).all_finite());
    }
}

#[test]
fn adapt_with_identical_rows_is_safe() {
    // A pathological target batch: one sample repeated. The density map
    // degenerates to a spike; the pipeline must stay finite.
    let (model, calib, cfg, target_x) = calibrated_toy();
    let rows = vec![0usize; 64];
    let xb = target_x.select_rows(&rows);
    let mut m = model.clone();
    let _ = adapt(&mut m, &calib, &xb, &Mse, &cfg); // any typed error is acceptable
    assert!(m.predict(&xb).all_finite());
}

#[test]
fn grid_wider_than_data_still_works() {
    let labels = [0.5, 0.50001, 0.49999];
    let spec = GridSpec::covering(&labels, 10.0, 1); // one giant cell + pads
    let map = DensityMap1d::from_labels(&labels, spec);
    assert!((map.total_mass() - 1.0).abs() < 1e-12);
    let generator = PseudoLabelGenerator1d::new(&map, 0.1, ErrorModel::Gaussian);
    let p = generator.generate(0.5, 0.2, 0.3);
    assert!(p.value[0].is_finite());
}

#[test]
fn sigma_floor_protects_against_degenerate_source_errors() {
    // All source errors identical ⇒ every segment std is 0 ⇒ the σ floor
    // must keep downstream Gaussians valid.
    let us: Vec<f64> = (0..100).map(|i| 0.1 + i as f64 * 0.01).collect();
    let es = vec![0.25; 100]; // constant *signed* error, zero spread
    let qs = QsCalibration::fit(&us, &es, 10);
    let sigma = qs.sigma(0.5);
    assert!(sigma > 0.0);
    // And the density estimator accepts it.
    let spec = GridSpec::from_range(0.0, 1.0, 0.1);
    let map = DensityMap1d::estimate(&[0.5], &[sigma], spec, ErrorModel::Gaussian);
    assert!(map.total_mass() > 0.99);
}

#[test]
fn classifier_with_constant_source_uncertainty() {
    let c = ConfidenceClassifier::calibrate(&[0.3; 50], 0.9);
    assert_eq!(c.tau, 0.3);
    let s = c.split(&[0.29, 0.3, 0.31]);
    assert_eq!(s.confident, vec![0, 1]);
    assert_eq!(s.uncertain, vec![2]);
}

#[test]
fn scenario_rescale_with_degenerate_targets() {
    let (mut model, calib, mut cfg, target_x) = calibrated_toy();
    cfg.scenario_tau_rescale = true;
    // Zero-uncertainty batch (deterministic model would produce this):
    // rescaling must fall back to the shipped τ rather than divide by zero.
    let cls = tasfar_core::adapt::scenario_classifier(&calib, &cfg, &[0.0, 0.0, 0.0]);
    assert_eq!(cls.tau, calib.classifier.tau);
    // Empty batch: same fallback.
    let cls = tasfar_core::adapt::scenario_classifier(&calib, &cfg, &[]);
    assert_eq!(cls.tau, calib.classifier.tau);
    // And a normal batch still adapts.
    let outcome = adapt(&mut model, &calib, &target_x, &Mse, &cfg).expect("toy target adapts");
    assert!(!outcome.pseudo.is_empty());
}

#[test]
fn training_skips_zero_weight_batches_entirely() {
    // If an entire mini-batch has zero weight, fit must skip it rather than
    // divide by zero. Construct weights so whole contiguous chunks are zero
    // and shuffling is off.
    let mut rng = Rng::new(3);
    let x = Tensor::rand_uniform(64, 1, -1.0, 1.0, &mut rng);
    let y = x.clone();
    let mut w = vec![0.0; 64];
    for wi in w.iter_mut().take(16) {
        *wi = 1.0;
    }
    let mut model = Sequential::new().add(Dense::new(1, 1, Init::XavierUniform, &mut rng));
    let mut opt = Adam::new(0.05);
    let report = fit(
        &mut model,
        &mut opt,
        &Mse,
        &x,
        &y,
        Some(&w),
        &TrainConfig {
            epochs: 50,
            batch_size: 16,
            shuffle: false,
            ..TrainConfig::default()
        },
    );
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let pred = model.predict(&Tensor::full(1, 1, 0.5));
    assert!(
        (pred.get(0, 0) - 0.5).abs() < 0.1,
        "model should fit the weighted chunk"
    );
}

#[test]
fn mc_dropout_handles_large_inputs_without_overflow() {
    let mut rng = Rng::new(4);
    let mut model = Sequential::new()
        .add(Dense::new(2, 8, Init::HeNormal, &mut rng))
        .add(Tanh::new())
        .add(Dropout::new(0.2, &mut rng))
        .add(Dense::new(8, 1, Init::XavierUniform, &mut rng));
    let x = Tensor::full(4, 2, 1e6);
    let p = McDropout::new(10).predict(&mut model, &x);
    assert!(p.point.all_finite());
    assert!(p.uncertainty.iter().all(|u| u.is_finite()));
}

#[test]
fn relative_uncertainty_near_zero_predictions_is_floored() {
    // Predictions at ~0 magnitude must not explode the relative form.
    let mut rng = Rng::new(5);
    let mut model = Sequential::new()
        .add(Dense::new(1, 8, Init::HeNormal, &mut rng))
        .add(Relu::new())
        .add(Dropout::new(0.3, &mut rng))
        .add(Dense::new(8, 1, Init::Zeros, &mut rng)); // all-zero head
    let x = Tensor::rand_normal(16, 1, 0.0, 1.0, &mut rng);
    let p = McDropout::new(10).relative(true).predict(&mut model, &x);
    assert!(p.uncertainty.iter().all(|u| u.is_finite()));
}

#[test]
fn pseudo_generator_with_huge_sigma_collapses_to_map_mean_not_nan() {
    let mut rng = Rng::new(6);
    let labels: Vec<f64> = (0..1000).map(|_| rng.gaussian(2.0, 0.3)).collect();
    let map = DensityMap1d::from_labels(&labels, GridSpec::covering(&labels, 0.1, 2));
    let generator = PseudoLabelGenerator1d::new(&map, 0.1, ErrorModel::Gaussian);
    let p = generator.generate(2.0, 1e6, 0.5);
    assert!(p.value[0].is_finite());
    // With an (effectively) flat instance distribution the posterior is the
    // map itself; the label lands near the map's mean.
    assert!((p.value[0] - 2.0).abs() < 0.2, "got {}", p.value[0]);
}

#[test]
fn empty_and_single_bin_density_maps() {
    // One label, one bin.
    let spec = GridSpec::from_range(0.0, 1.0, 2.0);
    assert_eq!(spec.bins, 1);
    let map = DensityMap1d::from_labels(&[0.5], spec);
    assert_eq!(map.mass(0), 1.0);
    assert_eq!(map.mean_mass(), 1.0);
}

#[test]
fn partitioned_adapter_with_single_group_matches_plain_adapt_structure() {
    let (model, calib, cfg, target_x) = calibrated_toy();
    let keys = vec![0usize; target_x.rows()];
    let parted =
        tasfar_core::partition::adapt_partitioned(&model, &calib, &target_x, &keys, &Mse, &cfg);
    assert_eq!(parted.num_groups(), 1);
    let outcome = parted.outcomes[0]
        .as_ref()
        .expect("single toy group adapts");
    assert_eq!(
        outcome.split.confident.len() + outcome.split.uncertain.len(),
        target_x.rows()
    );
}
